"""Request/response models for the HTTP/JSON control plane.

Dataclass models with *typed* validation: every field of an incoming
JSON body is checked for presence, type, and range here — before any
service machinery runs — and failures raise :class:`SchemaError`, which
the server renders as a 400 JSON body naming the offending field.
Library errors keep their own lanes (:class:`~repro.exceptions.
ProtocolError` → 409, :class:`~repro.exceptions.TransportError` → 502)
and are never smuggled to clients as tracebacks.

Vector payloads cross the API as base64 text in one of two encodings:

* ``u64`` — little-endian 8-byte words, one per field element.
* ``packed`` — the wire layer's LSB-first bit-packing
  (:func:`repro.wire.pack_bits`) at ``ceil(log2 q)`` bits per element,
  the same diet the framed transports speak; for the default field that
  is 32 bits per element, half the ``u64`` size before base64.

Responses mirror the request's encoding, so a client that uploads
packed vectors gets its aggregate back packed.
"""

from __future__ import annotations

import base64
import binascii
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ReproError, WireError
from repro.service.config import CohortSpec, TransportKind, WireFormat
from repro.wire import pack_bits, packed_nbytes, unpack_bits

#: Vector payload encodings the control plane accepts and emits.
ENCODINGS = ("u64", "packed")


class SchemaError(ReproError):
    """A request body failed typed validation; rendered as HTTP 400."""

    def __init__(self, field: str, message: str):
        self.field = field
        super().__init__(f"{field}: {message}")


class NotFoundError(ReproError):
    """The requested resource does not exist; rendered as HTTP 404."""


def field_bits(q: int) -> int:
    """Bit width of one element of GF(q) (what ``packed`` packs at)."""
    return max(1, (int(q) - 1).bit_length())


# ----------------------------------------------------------------------
# typed field extraction
# ----------------------------------------------------------------------
_TYPE_NAMES = {
    int: "an integer",
    float: "a number",
    str: "a string",
    bool: "a boolean",
    dict: "an object",
    list: "an array",
}


def _typed(
    body: Dict[str, Any],
    name: str,
    expected: type,
    default: Any = None,
    required: bool = False,
):
    """Fetch ``body[name]`` as ``expected`` or raise a field-typed error."""
    if name not in body or body[name] is None:
        if required:
            raise SchemaError(name, "required field is missing")
        return default
    value = body[name]
    # bool is an int subclass in Python; a JSON true is never a count.
    if expected in (int, float) and isinstance(value, bool):
        raise SchemaError(
            name, f"expected {_TYPE_NAMES[expected]}, got a boolean"
        )
    if expected is float and isinstance(value, int):
        return float(value)
    if not isinstance(value, expected):
        raise SchemaError(
            name,
            f"expected {_TYPE_NAMES.get(expected, expected.__name__)}, "
            f"got {type(value).__name__}",
        )
    return value


def _reject_unknown(body: Dict[str, Any], known: Tuple[str, ...],
                    where: str) -> None:
    unknown = sorted(set(body) - set(known))
    if unknown:
        raise SchemaError(
            where,
            f"unknown field(s) {unknown}; known fields: {sorted(known)}",
        )


# ----------------------------------------------------------------------
# vectors
# ----------------------------------------------------------------------
def decode_vector(
    text: str, encoding: str, q: int, dim: int, field: str
) -> np.ndarray:
    """Base64 text → validated uint64 field vector of length ``dim``."""
    if not isinstance(text, str):
        raise SchemaError(
            field, f"expected a base64 string, got {type(text).__name__}"
        )
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as exc:
        raise SchemaError(field, f"invalid base64: {exc}") from None
    if encoding == "u64":
        if len(raw) != dim * 8:
            raise SchemaError(
                field,
                f"u64 vector is {len(raw)} bytes; dim={dim} needs "
                f"exactly {dim * 8}",
            )
        vector = np.frombuffer(raw, dtype="<u8").astype(
            np.uint64, copy=False
        )
    else:  # packed
        bits = field_bits(q)
        try:
            vector = unpack_bits(raw, bits, dim)
        except WireError as exc:
            raise SchemaError(field, str(exc)) from None
    if vector.size and int(vector.max()) >= q:
        raise SchemaError(
            field,
            f"element {int(vector.argmax())} is {int(vector.max())}, "
            f"outside GF({q})",
        )
    return vector


def encode_vector(vector: np.ndarray, encoding: str, q: int) -> str:
    """Field vector → base64 text in the requested encoding."""
    arr = np.ascontiguousarray(np.asarray(vector), dtype="<u8")
    if encoding == "u64":
        raw = arr.tobytes()
    else:  # packed
        raw = pack_bits(arr, field_bits(q))
    return base64.b64encode(raw).decode("ascii")


def decode_real_vector(text: str, dim: int, field: str) -> np.ndarray:
    """Base64 little-endian float64 → validated real vector of ``dim``.

    Buffered-async submissions are *real-valued* local updates (the
    server quantizes them into the field at drain time), so they ride
    the ``f64`` encoding instead of the field encodings above.
    """
    if not isinstance(text, str):
        raise SchemaError(
            field, f"expected a base64 string, got {type(text).__name__}"
        )
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as exc:
        raise SchemaError(field, f"invalid base64: {exc}") from None
    if len(raw) != dim * 8:
        raise SchemaError(
            field,
            f"f64 vector is {len(raw)} bytes; dim={dim} needs exactly "
            f"{dim * 8}",
        )
    vector = np.frombuffer(raw, dtype="<f8").astype(np.float64, copy=True)
    if not np.all(np.isfinite(vector)):
        raise SchemaError(field, "vector contains non-finite elements")
    return vector


def encode_real_vector(vector: np.ndarray) -> str:
    """Real vector → base64 little-endian float64 text."""
    arr = np.ascontiguousarray(np.asarray(vector), dtype="<f8")
    return base64.b64encode(arr.tobytes()).decode("ascii")


def _parse_encoding(body: Dict[str, Any]) -> str:
    encoding = _typed(body, "encoding", str, default="u64")
    if encoding not in ENCODINGS:
        raise SchemaError(
            "encoding", f"must be one of {list(ENCODINGS)}, got {encoding!r}"
        )
    return encoding


# ----------------------------------------------------------------------
# POST /cohorts
# ----------------------------------------------------------------------
_COHORT_FIELDS = (
    "protocol", "num_users", "model_dim", "num_shards", "pool_size",
    "low_water", "privacy", "dropout_tolerance", "transport",
    "wire_format", "num_workers", "connect", "seed",
    "kind", "buffer_size", "staleness_fn", "staleness_alpha",
    "staleness_levels", "quant_levels", "quant_clip",
)


@dataclass(frozen=True)
class CohortCreateRequest:
    """The JSON body of ``POST /cohorts``: one runtime cohort spec.

    Field names and defaults mirror
    :class:`~repro.service.config.CohortSpec`; enums travel as their
    string values (``"transport": "socket"``).  :meth:`to_spec` runs the
    config layer's full geometry validation, so a cohort that would be
    rejected at static config build time is rejected here with the same
    message, as a 400.
    """

    num_users: int = 8
    model_dim: int = 256
    num_shards: int = 1
    pool_size: int = 4
    low_water: int = 0
    privacy: int = 1
    dropout_tolerance: int = 1
    protocol: str = "lightsecagg"
    transport: str = "inline"
    wire_format: str = "packed"
    num_workers: Optional[int] = None
    connect: Optional[Tuple[str, ...]] = None
    seed: int = 0
    kind: str = "sync"
    buffer_size: Optional[int] = None
    staleness_fn: str = "constant"
    staleness_alpha: float = 1.0
    staleness_levels: int = 1 << 6
    quant_levels: int = 1 << 16
    quant_clip: Optional[float] = None

    @classmethod
    def from_json(cls, body: Dict[str, Any]) -> "CohortCreateRequest":
        _reject_unknown(body, _COHORT_FIELDS, "cohort spec")
        connect = _typed(body, "connect", list)
        if connect is not None:
            for i, address in enumerate(connect):
                if not isinstance(address, str):
                    raise SchemaError(
                        f"connect[{i}]",
                        f"expected a host:port string, got "
                        f"{type(address).__name__}",
                    )
            connect = tuple(connect)
        defaults = cls()
        return cls(
            num_users=_typed(body, "num_users", int, defaults.num_users),
            model_dim=_typed(body, "model_dim", int, defaults.model_dim),
            num_shards=_typed(body, "num_shards", int, defaults.num_shards),
            pool_size=_typed(body, "pool_size", int, defaults.pool_size),
            low_water=_typed(body, "low_water", int, defaults.low_water),
            privacy=_typed(body, "privacy", int, defaults.privacy),
            dropout_tolerance=_typed(
                body, "dropout_tolerance", int, defaults.dropout_tolerance
            ),
            protocol=_typed(body, "protocol", str, defaults.protocol),
            transport=_typed(body, "transport", str, defaults.transport),
            wire_format=_typed(
                body, "wire_format", str, defaults.wire_format
            ),
            num_workers=_typed(body, "num_workers", int),
            connect=connect,
            seed=_typed(body, "seed", int, defaults.seed),
            kind=_typed(body, "kind", str, defaults.kind),
            buffer_size=_typed(body, "buffer_size", int),
            staleness_fn=_typed(
                body, "staleness_fn", str, defaults.staleness_fn
            ),
            staleness_alpha=_typed(
                body, "staleness_alpha", float, defaults.staleness_alpha
            ),
            staleness_levels=_typed(
                body, "staleness_levels", int, defaults.staleness_levels
            ),
            quant_levels=_typed(
                body, "quant_levels", int, defaults.quant_levels
            ),
            quant_clip=_typed(body, "quant_clip", float),
        )

    def to_spec(self) -> CohortSpec:
        try:
            transport = TransportKind(self.transport)
        except ValueError:
            raise SchemaError(
                "transport",
                f"must be one of "
                f"{[k.value for k in TransportKind]}, got "
                f"{self.transport!r}",
            ) from None
        try:
            wire_format = WireFormat(self.wire_format)
        except ValueError:
            raise SchemaError(
                "wire_format",
                f"must be one of {[w.value for w in WireFormat]}, got "
                f"{self.wire_format!r}",
            ) from None
        # CohortSpec's own __post_init__ performs the full geometry
        # validation; its ReproError is the 400 body's message.
        return CohortSpec(
            num_users=self.num_users,
            model_dim=self.model_dim,
            num_shards=self.num_shards,
            pool_size=self.pool_size,
            low_water=self.low_water,
            dropout_tolerance=self.dropout_tolerance,
            privacy=self.privacy,
            protocol=self.protocol,
            transport=transport,
            wire_format=wire_format,
            num_workers=self.num_workers,
            connect=self.connect,
            seed=self.seed,
            kind=self.kind,
            buffer_size=self.buffer_size,
            staleness_fn=self.staleness_fn,
            staleness_alpha=self.staleness_alpha,
            staleness_levels=self.staleness_levels,
            quant_levels=self.quant_levels,
            quant_clip=self.quant_clip,
        )


# ----------------------------------------------------------------------
# POST /cohorts/{id}/updates  (buffered cohorts)
# ----------------------------------------------------------------------
_SUBMIT_FIELDS = (
    "user_id", "update", "download_round", "dropouts", "encoding",
)


@dataclass(frozen=True)
class SubmitUpdateRequest:
    """The JSON body of ``POST /cohorts/{id}/updates``.

    One buffered-async submission: a member's real-valued local update
    (base64 little-endian float64, encoding ``f64``), the round it
    downloaded the model at (``download_round``, defaulting to the
    current round), and optionally member ids it observed unreachable
    (excluded from the recovery phase of the drain this submission
    lands in).
    """

    user_id: int
    update_b64: str
    download_round: Optional[int] = None
    dropouts: Tuple[int, ...] = ()

    @classmethod
    def from_json(cls, body: Dict[str, Any]) -> "SubmitUpdateRequest":
        _reject_unknown(body, _SUBMIT_FIELDS, "update submission")
        encoding = _typed(body, "encoding", str, default="f64")
        if encoding != "f64":
            raise SchemaError(
                "encoding",
                "buffered submissions are real-valued; only 'f64' "
                f"(little-endian float64) is supported, got {encoding!r}",
            )
        user_id = _typed(body, "user_id", int, required=True)
        if user_id < 0:
            raise SchemaError("user_id", f"must be >= 0, got {user_id}")
        update = _typed(body, "update", str, required=True)
        download_round = _typed(body, "download_round", int)
        if download_round is not None and download_round < 0:
            raise SchemaError(
                "download_round", f"must be >= 0, got {download_round}"
            )
        dropouts_list = _typed(body, "dropouts", list, [])
        dropouts: List[int] = []
        for i, uid in enumerate(dropouts_list):
            if isinstance(uid, bool) or not isinstance(uid, int):
                raise SchemaError(
                    f"dropouts[{i}]",
                    f"expected an integer member id, got "
                    f"{type(uid).__name__}",
                )
            dropouts.append(uid)
        return cls(
            user_id=user_id,
            update_b64=update,
            download_round=download_round,
            dropouts=tuple(dropouts),
        )

    def decode(self, model_dim: int) -> np.ndarray:
        return decode_real_vector(self.update_b64, model_dim, "update")


# ----------------------------------------------------------------------
# POST /cohorts/{id}/rounds
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SyntheticRoundSpec:
    """Server-generated round inputs (bench/smoke traffic)."""

    seed: int = 0
    dropout_rate: float = 0.0

    @classmethod
    def from_json(cls, body: Dict[str, Any]) -> "SyntheticRoundSpec":
        _reject_unknown(body, ("seed", "dropout_rate"), "synthetic")
        rate = _typed(body, "dropout_rate", float, 0.0)
        if not 0.0 <= rate < 1.0:
            raise SchemaError(
                "synthetic.dropout_rate",
                f"must be in [0, 1), got {rate}",
            )
        return cls(seed=_typed(body, "seed", int, 0), dropout_rate=rate)


@dataclass(frozen=True)
class RoundRequest:
    """The JSON body of ``POST /cohorts/{id}/rounds``.

    Exactly one of ``updates`` (explicit per-user base64 vectors) or
    ``synthetic`` (a server-side input generator spec) must be present.
    ``dropouts`` lists user ids that dropped after upload; with
    ``synthetic`` it is unioned with the sampled dropouts.

    ``mode`` selects the execution style: ``"sync"`` (default) blocks
    until the round completes and returns the aggregate; ``"async"``
    returns ``202`` immediately with a round *handle* to poll at
    ``GET /cohorts/{id}/rounds/{handle}``.
    """

    updates_b64: Optional[Dict[int, str]] = None
    dropouts: Tuple[int, ...] = ()
    synthetic: Optional[SyntheticRoundSpec] = None
    encoding: str = "u64"
    mode: str = "sync"

    @classmethod
    def from_json(cls, body: Dict[str, Any]) -> "RoundRequest":
        _reject_unknown(
            body,
            ("updates", "dropouts", "synthetic", "encoding", "mode"),
            "round",
        )
        mode = _typed(body, "mode", str, default="sync")
        if mode not in ("sync", "async"):
            raise SchemaError(
                "mode", f"must be 'sync' or 'async', got {mode!r}"
            )
        updates = _typed(body, "updates", dict)
        synthetic_body = _typed(body, "synthetic", dict)
        if (updates is None) == (synthetic_body is None):
            raise SchemaError(
                "updates",
                "exactly one of 'updates' and 'synthetic' is required",
            )
        encoding = _parse_encoding(body)
        dropouts_list = _typed(body, "dropouts", list, [])
        dropouts: List[int] = []
        for i, uid in enumerate(dropouts_list):
            if isinstance(uid, bool) or not isinstance(uid, int):
                raise SchemaError(
                    f"dropouts[{i}]",
                    f"expected an integer user id, got "
                    f"{type(uid).__name__}",
                )
            dropouts.append(uid)
        updates_b64: Optional[Dict[int, str]] = None
        if updates is not None:
            if not updates:
                raise SchemaError("updates", "needs at least one update")
            updates_b64 = {}
            for key, text in updates.items():
                try:
                    uid = int(key)
                except (TypeError, ValueError):
                    raise SchemaError(
                        f"updates[{key!r}]",
                        "keys must be integer user ids",
                    ) from None
                updates_b64[uid] = text
        synthetic = (
            SyntheticRoundSpec.from_json(synthetic_body)
            if synthetic_body is not None
            else None
        )
        return cls(
            updates_b64=updates_b64,
            dropouts=tuple(dropouts),
            synthetic=synthetic,
            encoding=encoding,
            mode=mode,
        )

    def materialize(self, spec: CohortSpec, gf):
        """Produce ``(updates, dropouts, rng)`` for the cohort's round.

        Decodes explicit vectors (validating user ids, dimension, and
        field range against the cohort's spec) or draws synthetic inputs
        exactly like :meth:`AggregationService.run_synthetic` — same rng
        construction, same draw order — so a synthetic HTTP round is
        bit-identical to the in-process synthetic path at equal seeds.
        """
        from repro.protocols.base import sample_dropouts

        for uid in self.dropouts:
            if not 0 <= uid < spec.num_users:
                raise SchemaError(
                    "dropouts",
                    f"user id {uid} outside [0, {spec.num_users})",
                )
        if self.synthetic is not None:
            rng = np.random.default_rng(self.synthetic.seed)
            updates = {
                i: gf.random(spec.model_dim, rng)
                for i in range(spec.num_users)
            }
            dropouts = set(self.dropouts) | sample_dropouts(
                spec.num_users, self.synthetic.dropout_rate, rng
            )
            return updates, dropouts, rng
        assert self.updates_b64 is not None
        updates = {}
        for uid in sorted(self.updates_b64):
            if not 0 <= uid < spec.num_users:
                raise SchemaError(
                    f"updates[{uid}]",
                    f"user id outside [0, {spec.num_users})",
                )
            updates[uid] = decode_vector(
                self.updates_b64[uid], self.encoding, gf.q,
                spec.model_dim, f"updates[{uid}]",
            )
        return updates, set(self.dropouts), None


@dataclass(frozen=True)
class RoundResponse:
    """The JSON body a completed round returns."""

    cohort_id: int
    round_index: int
    survivors: List[int]
    aggregate_b64: str
    encoding: str
    online_seconds: float
    pool_level: Optional[int]

    def to_json(self) -> Dict[str, Any]:
        return {
            "cohort_id": self.cohort_id,
            "round": self.round_index,
            "survivors": list(self.survivors),
            "aggregate": self.aggregate_b64,
            "encoding": self.encoding,
            "online_seconds": self.online_seconds,
            "pool_level": self.pool_level,
        }


# ----------------------------------------------------------------------
# POST /drain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DrainRequest:
    """The (optional) JSON body of ``POST /drain``."""

    timeout_s: Optional[float] = None

    @classmethod
    def from_json(cls, body: Dict[str, Any]) -> "DrainRequest":
        _reject_unknown(body, ("timeout_s",), "drain")
        timeout = _typed(body, "timeout_s", float)
        if timeout is not None and timeout <= 0:
            raise SchemaError("timeout_s", f"must be > 0, got {timeout}")
        return cls(timeout_s=timeout)
