"""The ``repro serve`` daemon: HTTP/JSON control plane over the service.

Two layers, separable for tests:

* :class:`ControlPlane` — the protocol-free core.  Wraps one
  :class:`~repro.service.service.AggregationService` and adds what a
  long-running daemon needs on top of the library: admission control
  (rounds and cohort creation are refused while draining), per-cohort
  in-flight round accounting (``DELETE`` waits for that cohort's rounds,
  drain waits for all of them), and a single idempotent drain that stops
  the whole service exactly once.
* :class:`ControlPlaneServer` — a stdlib
  :class:`~http.server.ThreadingHTTPServer` front end.  One thread per
  request; round submissions to *different* cohorts run concurrently,
  while two rounds racing the *same* cohort serialize at the cohort's
  phase machine (the loser gets a 409).  ``POST /drain`` (and SIGTERM,
  wired in the CLI) runs the drain, answers with the final summary, and
  only then stops the listener — an in-flight round's response is
  delivered before the process exits.

The endpoint table lives in :mod:`repro.service.api.routes`; request
and response models in :mod:`repro.service.api.schemas`.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional
from urllib.parse import urlsplit

import itertools

from repro.exceptions import ProtocolError
from repro.service.api.schemas import (
    NotFoundError,
    RoundRequest,
    RoundResponse,
    SubmitUpdateRequest,
    encode_real_vector,
    encode_vector,
)
from repro.service.config import CohortSpec
from repro.service.service import AggregationService


class ControlPlane:
    """Runtime cohort registry + admission control over one service."""

    def __init__(self, service: AggregationService):
        self.service = service
        self._cond = threading.Condition()
        self._inflight: Dict[int, int] = {}
        self._inflight_total = 0
        self._closing: set = set()
        self._draining = False
        self._drained = threading.Event()
        self._drain_summary: Optional[Dict[str, Any]] = None
        self._t0 = time.monotonic()
        # Async round handles: (cohort_id, handle) -> state dict.  The
        # worker thread runs through run_round, so its round is counted
        # in-flight and drain/delete wait it out like any other.
        self._round_handles: Dict[tuple, Dict[str, Any]] = {}
        self._handle_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    def health(self) -> Dict[str, Any]:
        with self._cond:
            draining = self._draining
            inflight = self._inflight_total
        return {
            "status": "draining" if draining else "ok",
            "uptime_seconds": time.monotonic() - self._t0,
            "cohorts": len(self.service.cohorts),
            "rounds_in_flight": inflight,
        }

    def metrics_text(self) -> str:
        return self.service.metrics.render_prometheus()

    def _describe(self, cohort) -> Dict[str, Any]:
        status = cohort.status()
        spec = self.service.cohort_specs.get(cohort.cohort_id)
        status["spec"] = spec.describe() if spec is not None else None
        return status

    def list_cohorts(self) -> Dict[str, Any]:
        return {
            "cohorts": [self._describe(c) for c in self.service.cohorts],
            "draining": self.draining,
        }

    def cohort_status(self, cohort_id: int) -> Dict[str, Any]:
        cohort = self.service.get_cohort(cohort_id)
        if cohort is None:
            raise NotFoundError(f"no cohort {cohort_id}")
        return self._describe(cohort)

    def cohort_traces(
        self, cohort_id: int, limit: int = 20
    ) -> Dict[str, Any]:
        """Recent round-trace summaries for one cohort, newest first."""
        if self.service.get_cohort(cohort_id) is None:
            raise NotFoundError(f"no cohort {cohort_id}")
        return {
            "cohort_id": cohort_id,
            "tracing": self.service.tracer.enabled,
            "traces": [
                t.summary()
                for t in self.service.traces(
                    cohort_id=cohort_id, limit=limit
                )
            ],
        }

    def get_trace(self, trace_id: int) -> Dict[str, Any]:
        """One full trace (the span tree) by id."""
        trace = self.service.get_trace(trace_id)
        if trace is None:
            raise NotFoundError(
                f"no trace {trace_id} (unknown or evicted from the ring)"
            )
        return trace.to_json()

    # ------------------------------------------------------------------
    # cohort lifecycle
    # ------------------------------------------------------------------
    def create_cohort(self, spec: CohortSpec) -> Dict[str, Any]:
        with self._cond:
            if self._draining:
                raise ProtocolError(
                    "service is draining; not admitting new cohorts"
                )
        cohort = self.service.add_cohort(spec)
        return self._describe(cohort)

    def delete_cohort(
        self, cohort_id: int, timeout_s: float = 30.0
    ) -> Dict[str, Any]:
        """Close one cohort after its in-flight rounds complete.

        New rounds for the cohort are refused the moment the delete is
        admitted; rounds already running finish and return their results
        (the cohort close/round race contract), then the cohort leaves
        the scheduler, the refiller, and its transport — neighbours
        never notice.
        """
        deadline = time.monotonic() + timeout_s
        with self._cond:
            if self.service.get_cohort(cohort_id) is None:
                raise NotFoundError(f"no cohort {cohort_id}")
            if cohort_id in self._closing:
                raise ProtocolError(
                    f"cohort {cohort_id} is already closing"
                )
            self._closing.add(cohort_id)
            try:
                while self._inflight.get(cohort_id, 0) > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ProtocolError(
                            f"cohort {cohort_id} still has rounds in "
                            f"flight after {timeout_s:g}s"
                        )
                    self._cond.wait(remaining)
            except ProtocolError:
                self._closing.discard(cohort_id)
                raise
        try:
            self.service.remove_cohort(cohort_id)
        finally:
            with self._cond:
                self._closing.discard(cohort_id)
                self._cond.notify_all()
        return {"cohort_id": cohort_id, "closed": True}

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------
    def run_round(
        self, cohort_id: int, request: RoundRequest
    ) -> RoundResponse:
        with self._cond:
            if self._draining:
                raise ProtocolError(
                    "service is draining; not admitting new rounds"
                )
            if cohort_id in self._closing:
                raise ProtocolError(f"cohort {cohort_id} is closing")
            cohort = self.service.get_cohort(cohort_id)
            if cohort is None:
                raise NotFoundError(f"no cohort {cohort_id}")
            self._inflight[cohort_id] = (
                self._inflight.get(cohort_id, 0) + 1
            )
            self._inflight_total += 1
        try:
            spec = self.service.cohort_specs[cohort_id]
            gf = self.service.gf
            updates, dropouts, rng = request.materialize(spec, gf)
            t0 = time.perf_counter()
            result = cohort.run_round(updates, dropouts, rng)
            online = time.perf_counter() - t0
            status = cohort.status()
            return RoundResponse(
                cohort_id=cohort_id,
                round_index=cohort.rounds,
                survivors=list(result.survivors),
                aggregate_b64=encode_vector(
                    result.aggregate, request.encoding, gf.q
                ),
                encoding=request.encoding,
                online_seconds=online,
                pool_level=status["pool_level"],
            )
        finally:
            with self._cond:
                self._inflight[cohort_id] -= 1
                if self._inflight[cohort_id] == 0:
                    del self._inflight[cohort_id]
                self._inflight_total -= 1
                self._cond.notify_all()

    def _admit(self, cohort_id: int):
        """Shared admission check: draining / closing / existence."""
        if self._draining:
            raise ProtocolError(
                "service is draining; not admitting new work"
            )
        if cohort_id in self._closing:
            raise ProtocolError(f"cohort {cohort_id} is closing")
        cohort = self.service.get_cohort(cohort_id)
        if cohort is None:
            raise NotFoundError(f"no cohort {cohort_id}")
        return cohort

    def start_async_round(
        self, cohort_id: int, request: RoundRequest
    ) -> Dict[str, Any]:
        """Kick one round off on a worker thread; return a poll handle.

        The handle is scoped to the cohort; poll it at
        ``GET /cohorts/{id}/rounds/{handle}``.  The worker runs through
        :meth:`run_round`, so admission control and in-flight accounting
        (drain waits for it) apply exactly as for a synchronous request.
        """
        with self._cond:
            self._admit(cohort_id)
            handle = next(self._handle_counter)
            entry: Dict[str, Any] = {
                "state": "running", "result": None, "error": None,
            }
            self._round_handles[(cohort_id, handle)] = entry

        def work() -> None:
            try:
                response = self.run_round(cohort_id, request)
                with self._cond:
                    entry["state"] = "done"
                    entry["result"] = response.to_json()
            except Exception as exc:  # noqa: BLE001 — reported via poll
                with self._cond:
                    entry["state"] = "error"
                    entry["error"] = {
                        "type": type(exc).__name__,
                        "message": str(exc),
                    }

        threading.Thread(
            target=work,
            name=f"repro-round-{cohort_id}-{handle}",
            daemon=True,
        ).start()
        return {
            "cohort_id": cohort_id,
            "handle": handle,
            "state": "running",
            "poll": f"/cohorts/{cohort_id}/rounds/{handle}",
        }

    def get_round_handle(
        self, cohort_id: int, handle: int
    ) -> Dict[str, Any]:
        """Poll one async round: running / done (+result) / error."""
        with self._cond:
            entry = self._round_handles.get((cohort_id, handle))
            if entry is None:
                raise NotFoundError(
                    f"cohort {cohort_id} has no round handle {handle}"
                )
            snapshot = {
                "cohort_id": cohort_id,
                "handle": handle,
                "state": entry["state"],
                "result": entry["result"],
                "error": entry["error"],
            }
        return snapshot

    # ------------------------------------------------------------------
    # buffered-async data plane + elastic membership
    # ------------------------------------------------------------------
    def submit_update(
        self, cohort_id: int, request: SubmitUpdateRequest
    ) -> Dict[str, Any]:
        """One buffered submission; the sealing one returns the drain.

        Counted in-flight like a round: a concurrent drain or cohort
        delete waits for the submission (and the drain it may carry) to
        complete.
        """
        with self._cond:
            cohort = self._admit(cohort_id)
            self._inflight[cohort_id] = (
                self._inflight.get(cohort_id, 0) + 1
            )
            self._inflight_total += 1
        try:
            spec = self.service.cohort_specs[cohort_id]
            update = request.decode(spec.model_dim)
            outcome = cohort.submit_update(
                request.user_id,
                update,
                download_round=request.download_round,
                dropouts=set(request.dropouts),
            )
            outcome = dict(outcome)
            outcome["cohort_id"] = cohort_id
            if outcome.get("drained"):
                outcome["aggregate"] = encode_real_vector(
                    outcome["aggregate"]
                )
                outcome["encoding"] = "f64"
            return outcome
        finally:
            with self._cond:
                self._inflight[cohort_id] -= 1
                if self._inflight[cohort_id] == 0:
                    del self._inflight[cohort_id]
                self._inflight_total -= 1
                self._cond.notify_all()

    def join_member(self, cohort_id: int) -> Dict[str, Any]:
        """Admit one member to a buffered cohort (re-keys shares)."""
        with self._cond:
            cohort = self._admit(cohort_id)
        result = dict(cohort.join_member())
        result["cohort_id"] = cohort_id
        return result

    def leave_member(self, cohort_id: int, user_id: int) -> Dict[str, Any]:
        """Retire one member from a buffered cohort (re-keys shares)."""
        with self._cond:
            cohort = self._admit(cohort_id)
        result = dict(cohort.leave_member(user_id))
        result["cohort_id"] = cohort_id
        return result

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------
    def drain(self, timeout_s: Optional[float] = None) -> Dict[str, Any]:
        """Stop admitting work, wait out in-flight rounds, stop the service.

        Idempotent and thread-safe: the first caller performs the drain;
        concurrent callers (a second POST, a SIGTERM racing a POST) block
        until it completes and return the same summary.  Draining is
        sticky — even if the in-flight wait times out, no new work is
        admitted afterwards.
        """
        with self._cond:
            first = not self._draining
            self._draining = True
            if first:
                deadline = (
                    None if timeout_s is None
                    else time.monotonic() + timeout_s
                )
                while self._inflight_total > 0:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise ProtocolError(
                                f"{self._inflight_total} round(s) still "
                                f"in flight after {timeout_s:g}s"
                            )
                    self._cond.wait(remaining)
        if not first:
            self._drained.wait()
            with self._cond:
                return dict(self._drain_summary or {})
        # In-flight rounds are done and nothing new is admitted: stop
        # the service (refiller joined first, then sessions, then
        # transports — the library's clean-shutdown ordering).
        self.service.stop()
        snapshot = self.service.metrics.snapshot()
        summary = {
            "drained": True,
            "uptime_seconds": time.monotonic() - self._t0,
            "total_rounds": snapshot["total_rounds"],
            "total_stalls": snapshot["total_stalls"],
            "cohorts_closed": len(self.service.cohorts),
        }
        with self._cond:
            self._drain_summary = summary
        self._drained.set()
        return dict(summary)


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------
class _ControlHTTPServer(ThreadingHTTPServer):
    # Handler threads are daemons: a wedged client connection must not
    # block process exit after drain already stopped the service.
    daemon_threads = True

    def __init__(self, address, control: ControlPlane,
                 outer: "ControlPlaneServer"):
        self.control = control
        self.outer = outer
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # The daemon's access log is the caller's business (CI smoke tests
    # parse stdout); keep the handler quiet.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _read_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return body if isinstance(body, dict) else None

    def _handle(self) -> None:
        from repro.service.api.routes import dispatch, error_response

        body = self._read_body()
        if body is None:
            response = error_response(
                400, "invalid-json",
                "request body must be a JSON object",
            )
        else:
            response = dispatch(
                self.server.control,
                self.command,
                urlsplit(self.path).path,
                body,
            )
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(response.body)))
            if response.shutdown_after:
                self.send_header("Connection", "close")
                self.close_connection = True
            self.end_headers()
            self.wfile.write(response.body)
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away mid-response
        if response.shutdown_after:
            # The drain summary is flushed to the client; now stop the
            # listener so serve_until() unblocks and the process exits.
            self.server.outer.request_shutdown()

    do_GET = _handle
    do_POST = _handle
    do_DELETE = _handle


class ControlPlaneServer:
    """Lifecycle wrapper: listener thread, shutdown latch, max-seconds.

    ``port=0`` binds an ephemeral port published via :attr:`address`
    (the smoke-test idiom).  :meth:`serve_until` blocks the calling
    thread until a drain completes (via ``POST /drain`` or
    :meth:`request_shutdown`) or ``max_seconds`` elapses — in which case
    it drains itself, so a bounded run still exits with transports
    closed and zero leaked threads.
    """

    def __init__(
        self,
        control: ControlPlane,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.control = control
        self._httpd = _ControlHTTPServer((host, port), control, self)
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._done = threading.Event()
        self._stopped = False

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "ControlPlaneServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"repro-serve-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def request_shutdown(self) -> None:
        """Unblock :meth:`serve_until` (idempotent, any thread)."""
        self._done.set()

    def serve_until(self, max_seconds: Optional[float] = None) -> None:
        self.start()
        if not self._done.wait(timeout=max_seconds):
            # Deadline elapsed with no drain request: drain ourselves so
            # the bounded run still shuts down cleanly.
            try:
                self.control.drain()
            except ProtocolError:
                pass
        self.stop()

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self._done.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ControlPlaneServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
