"""Per-cohort round lifecycle: an explicit, snapshotable state machine.

A *cohort* is one federation of ``N`` users training one model through
one (possibly sharded) protocol session.  The service hosts many cohorts
concurrently; each cohort serializes its own rounds through the phase
machine below, modelled on long-lived round managers in production FL
stacks: explicit phases, loud invalid transitions, and a status snapshot
a coordinator can poll while background refills drain.

Phases::

    IDLE -> COLLECTING -> AGGREGATING -> IDLE   (per round)
    any  -> CLOSED                              (terminal)

``COLLECTING`` is where a deployment would wait for client uploads; the
in-process service enters it when the caller hands over the round's
updates.  ``AGGREGATING`` covers the protocol's online path.  The round
*stalls* if the session pool is empty at aggregation start — that is the
event background refill eliminates, and the cohort counts it.
"""

from __future__ import annotations

import enum
import threading
from typing import Dict, Optional, Set

import numpy as np

from repro.exceptions import ProtocolError
from repro.obs import Tracer
from repro.protocols.base import AggregationResult
from repro.service.engines import RoundEngine, SyncRoundEngine
from repro.service.metrics import ServiceMetrics
from repro.service.refill import BackgroundRefiller


class CohortPhase(enum.Enum):
    IDLE = "idle"
    COLLECTING = "collecting"
    AGGREGATING = "aggregating"
    CLOSED = "closed"


class Cohort:
    """One FL cohort driving rounds through its session.

    Parameters
    ----------
    cohort_id:
        Stable identifier used in metrics and snapshots.
    session:
        A :class:`~repro.protocols.base.ProtocolSession` or
        :class:`~repro.service.sharding.ShardedSession`.
    metrics:
        Optional shared :class:`ServiceMetrics` sink.
    refiller:
        Optional :class:`BackgroundRefiller`; the cohort nudges it after
        every round so top-ups start as soon as the pool drains.
    tracer:
        Optional :class:`~repro.obs.Tracer`; every round then records a
        :class:`~repro.obs.RoundTrace` spanning the whole phase machine,
        with the transports contributing scatter/compute/gather spans.
    engine:
        Optional :class:`~repro.service.engines.RoundEngine` strategy
        deciding *how* rounds happen.  Defaults to
        :class:`~repro.service.engines.SyncRoundEngine` (the original
        synchronous machine, bit-for-bit); a
        :class:`~repro.service.engines.BufferedAsyncRoundEngine` turns
        the cohort into the buffered-async workload (clients submit
        asynchronously, drains fire when the buffer fills).
    """

    def __init__(
        self,
        cohort_id: int,
        session,
        metrics: Optional[ServiceMetrics] = None,
        refiller: Optional[BackgroundRefiller] = None,
        tracer: Optional[Tracer] = None,
        engine: Optional[RoundEngine] = None,
    ):
        self.cohort_id = int(cohort_id)
        self.session = session
        self.metrics = metrics
        self.refiller = refiller
        self.tracer = tracer
        self.phase = CohortPhase.IDLE
        self.rounds = 0
        self.stalls = 0
        self._phase_lock = threading.Lock()
        self.engine = engine if engine is not None else SyncRoundEngine()
        self.engine.bind(self)

    @property
    def kind(self) -> str:
        """The cohort's workload kind (``sync`` / ``buffered``)."""
        return self.engine.kind

    # ------------------------------------------------------------------
    # Phase mutations happen under one lock so a concurrent close() can
    # never interleave *inside* a transition: CLOSED is terminal (a
    # transition can neither overwrite it nor half-observe it).
    def _transition(self, expected: CohortPhase, to: CohortPhase) -> None:
        with self._phase_lock:
            if self.phase is not expected:
                raise ProtocolError(
                    f"cohort {self.cohort_id}: invalid transition "
                    f"{self.phase.value} -> {to.value} (expected to be in "
                    f"{expected.value})"
                )
            self.phase = to

    def _advance(self, expected: CohortPhase, to: CohortPhase) -> None:
        """Mid-round transition that tolerates a concurrent close().

        CLOSED is terminal: once close() has marked the cohort, the round
        in flight keeps running to completion but stops moving the phase
        machine, so its errors (if any) come from the closed *session* —
        not from a misleading invalid-transition complaint.
        """
        with self._phase_lock:
            if self.phase is CohortPhase.CLOSED:
                return
            if self.phase is not expected:
                raise ProtocolError(
                    f"cohort {self.cohort_id}: invalid transition "
                    f"{self.phase.value} -> {to.value} (expected to be in "
                    f"{expected.value})"
                )
            self.phase = to

    def run_round(
        self,
        updates: Dict[int, np.ndarray],
        dropouts: Optional[Set[int]] = None,
        rng: Optional[np.random.Generator] = None,
        **phase_kwargs,
    ) -> AggregationResult:
        """Drive one full round through the phase machine.

        Close/round race semantics: a :meth:`close` that lands while a
        round is COLLECTING or AGGREGATING does not abort it — the
        in-flight round completes and returns its result (the session
        round has already committed its pool accounting by the time the
        race is observable), the cohort simply stays CLOSED instead of
        returning to IDLE.  Rounds *started* after close fail immediately
        with a closed-cohort error.

        The synchronous machine itself lives in
        :class:`~repro.service.engines.SyncRoundEngine`; non-sync
        engines reject this entry point (their rounds are driven by
        :meth:`submit_update`).
        """
        return self.engine.run_round(updates, dropouts, rng, **phase_kwargs)

    # ------------------------------------------------------------------
    # buffered-async entry points (engine-gated)
    # ------------------------------------------------------------------
    def _buffered_engine(self):
        engine = self.engine
        if not hasattr(engine, "submit"):
            raise ProtocolError(
                f"cohort {self.cohort_id} is a {self.kind} cohort; "
                "asynchronous submissions and elastic membership need "
                "kind='buffered'"
            )
        return engine

    def submit_update(
        self,
        user_id: int,
        update: np.ndarray,
        download_round: Optional[int] = None,
        dropouts: Optional[Set[int]] = None,
    ) -> Dict:
        """Buffer one client update (buffered cohorts only); the sealing
        submission drains the buffer and returns the aggregate."""
        return self._buffered_engine().submit(
            user_id, update, download_round=download_round,
            dropouts=dropouts,
        )

    def join_member(self) -> Dict:
        """Admit one member at runtime (buffered cohorts only)."""
        return self._buffered_engine().join()

    def leave_member(self, user_id: int) -> Dict:
        """Retire one member at runtime (buffered cohorts only)."""
        return self._buffered_engine().leave(user_id)

    def _complete_round(self, stalled: bool) -> None:
        """Commit the round counters and the AGGREGATING -> IDLE advance
        as one atomic step.

        Incrementing outside the lock (the pre-fix behaviour) let a
        concurrent :meth:`status` scrape observe a torn pair — the round
        already counted while the phase still said ``aggregating``, or
        vice versa.  CLOSED stays terminal exactly like :meth:`_advance`.
        """
        with self._phase_lock:
            self.rounds += 1
            if stalled:
                self.stalls += 1
            if self.phase is CohortPhase.CLOSED:
                return
            if self.phase is not CohortPhase.AGGREGATING:
                raise ProtocolError(
                    f"cohort {self.cohort_id}: invalid transition "
                    f"{self.phase.value} -> idle (expected to be in "
                    f"aggregating)"
                )
            self.phase = CohortPhase.IDLE

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.session.close()
        with self._phase_lock:
            self.phase = CohortPhase.CLOSED
        self.engine.close()

    def status(self) -> Dict:
        """Snapshotable cohort state for coordinators and the CLI.

        Phase and round counters are read under the cohort lock so a
        scrape racing :meth:`run_round` sees a consistent pair; the pool
        numbers come from the session's own locked snapshot surface.
        """
        supports_pool = getattr(self.session, "supports_pool", False)
        with self._phase_lock:
            phase = self.phase.value
            rounds = self.rounds
            stalls = self.stalls
        out = {
            "cohort_id": self.cohort_id,
            "phase": phase,
            "rounds": rounds,
            "stalls": stalls,
            "pool_level": self.session.pool_level if supports_pool else None,
            "pool_size": self.session.pool_size if supports_pool else None,
        }
        # The sync engine contributes nothing, keeping pre-engine status
        # snapshots byte-identical; the buffered engine adds its kind,
        # buffer occupancy, and membership view.
        out.update(self.engine.status_fields())
        return out

    def __repr__(self) -> str:
        return (
            f"Cohort({self.cohort_id}, phase={self.phase.value}, "
            f"rounds={self.rounds}, stalls={self.stalls})"
        )
