"""Per-kind round engines behind the protocol-agnostic cohort shell.

A :class:`~repro.service.cohort.Cohort` owns identity, the coarse phase
machine (IDLE / COLLECTING / AGGREGATING / CLOSED), counters, and the
wiring to metrics / refiller / tracer.  *How* a round happens is the
engine's business:

* :class:`SyncRoundEngine` — today's synchronous machine, bit-for-bit:
  the caller hands over a full round of updates and blocks through
  COLLECTING -> AGGREGATING.
* :class:`BufferedAsyncRoundEngine` — the paper's buffered-async
  workload (Appendix F): clients submit updates whenever they finish
  local training, the buffer fills asynchronously, and the K-th arrival
  seals the batch and drains it through the session's pooled secure
  path.  Drains are bit-identical to
  :meth:`~repro.asyncfl.secure_aggregator.AsyncSecureAggregator.aggregate`
  with the same drain stream, because
  :func:`~repro.asyncfl.secure_aggregator.prepare_deliveries` makes all
  value-affecting rng draws and masks cancel exactly.

The buffered engine keeps its own fine-grained round lifecycle
(FILLING -> SEALED -> AGGREGATING -> IDLE) as timestamped
:class:`PhaseTransition` records, nested inside the cohort's coarse
machine so existing status consumers keep working unchanged.

Elastic membership: :meth:`BufferedAsyncRoundEngine.join` /
:meth:`~BufferedAsyncRoundEngine.leave` re-key the session's mask
geometry for the new member set between drains.  The pool entries
encoded for the old geometry are invalidated by
:meth:`~repro.asyncfl.pooled.BufferedShardSession.rekey` and re-encoded
*warm* by the background refiller (the engine nudges it), so the next
drain stalls at most once instead of cold-starting the whole pool on
the online path.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set

import numpy as np

from repro.asyncfl.buffer import BufferedUpdate, UpdateBuffer
from repro.asyncfl.secure_aggregator import AsyncDelivery, prepare_deliveries
from repro.asyncfl.staleness import (
    QuantizedStaleness,
    constant_staleness,
    hinge_staleness,
    polynomial_staleness,
)
from repro.exceptions import ParameterError, ProtocolError
from repro.field.arithmetic import FiniteField
from repro.obs import Span, span
from repro.protocols.lightsecagg.params import LSAParams
from repro.quantization import ModelQuantizer, QuantizationConfig

#: Stream-id constant separating drain rngs from every other derived
#: stream in the repo (shard streams use (seed, cohort, shard)).
DRAIN_STREAM = 0x44524E53  # "DRNS"

#: Staleness weighting functions selectable from config by name.
STALENESS_FNS = ("constant", "polynomial", "hinge")


def drain_stream(
    seed: int, cohort_id: int, drain_index: int
) -> np.random.Generator:
    """The deterministic rng stream for one buffered drain.

    Exported so oracle tests (and the paper's reference
    :class:`~repro.asyncfl.secure_aggregator.AsyncSecureAggregator`) can
    reproduce the exact staleness/quantization draws of a service drain.
    """
    return np.random.default_rng(
        [int(seed), int(cohort_id), DRAIN_STREAM, int(drain_index)]
    )


def build_staleness(
    fn: str, alpha: float = 1.0, levels: int = 1 << 6
) -> QuantizedStaleness:
    """Resolve a config-named staleness function into its quantizer."""
    if fn == "constant":
        resolved = constant_staleness
    elif fn == "polynomial":
        resolved = polynomial_staleness(alpha)
    elif fn == "hinge":
        resolved = hinge_staleness(a=alpha)
    else:
        raise ProtocolError(
            f"unknown staleness fn {fn!r}; expected one of {STALENESS_FNS}"
        )
    return QuantizedStaleness(levels=levels, fn=resolved)


class RoundPhase(enum.Enum):
    """Fine-grained lifecycle of the buffered engine's current batch."""

    IDLE = "idle"
    FILLING = "filling"
    SEALED = "sealed"
    AGGREGATING = "aggregating"
    CLOSED = "closed"


@dataclass(frozen=True)
class PhaseTransition:
    """One timestamped step of the buffered round lifecycle.

    ``round_index`` is the drain index the transition belongs to;
    ``started_at_time`` is the unix time the phase was entered, matching
    the :class:`~repro.obs.Span` time base so transitions line up with
    round traces.
    """

    phase: RoundPhase
    round_index: int
    started_at_time: float = field(default_factory=time.time)


class RoundEngine:
    """Strategy interface: how one cohort kind runs its rounds."""

    kind: str = "abstract"

    def __init__(self) -> None:
        self.cohort = None

    def bind(self, cohort) -> None:
        """Attach the engine to its cohort shell (called by Cohort)."""
        self.cohort = cohort

    def run_round(self, updates, dropouts=None, rng=None, **phase_kwargs):
        raise ProtocolError(
            f"{self.kind} cohorts do not run synchronous rounds"
        )

    def status_fields(self) -> Dict:
        """Engine-specific additions to :meth:`Cohort.status` (may be
        empty — the sync engine adds nothing so pre-engine status
        snapshots stay byte-identical)."""
        return {}

    def close(self) -> None:
        pass


class SyncRoundEngine(RoundEngine):
    """The original synchronous round machine, verbatim.

    The body below is the pre-refactor ``Cohort.run_round`` operating on
    the cohort's own phase state; every transition, metric, trace tag,
    and error path is preserved bit-for-bit.
    """

    kind = "sync"

    def run_round(self, updates, dropouts=None, rng=None, **phase_kwargs):
        from repro.service.cohort import CohortPhase

        c = self.cohort
        dropouts = set(dropouts or set())
        # Entering the machine happens OUTSIDE the recovery block: a call
        # rejected here (cohort busy or closed) must not clobber the
        # phase of a round legitimately in progress.  The entry check and
        # the transition race a concurrent close(), so the closed-cohort
        # error is (re)issued whenever CLOSED is what made entry invalid
        # — never a misleading invalid-transition complaint.
        try:
            if c.phase is CohortPhase.CLOSED:
                raise ProtocolError(
                    f"cohort {c.cohort_id} is closed; no further rounds"
                )
            c._transition(CohortPhase.IDLE, CohortPhase.COLLECTING)
        except ProtocolError:
            if c.phase is CohortPhase.CLOSED:
                raise ProtocolError(
                    f"cohort {c.cohort_id} is closed; no further rounds"
                ) from None
            raise
        trace = None
        if c.tracer is not None:
            trace = c.tracer.start_round(c.cohort_id, c.rounds)
            if trace is not None:
                trace.root.tags["transport"] = getattr(
                    getattr(c.session, "transport", None), "kind", "local"
                )
        try:
            # COLLECTING: updates are already in hand in-process; a
            # transport would gather client uploads here.
            with span("collect", users=str(len(updates))):
                c._advance(CohortPhase.COLLECTING, CohortPhase.AGGREGATING)
            supports_pool = getattr(c.session, "supports_pool", False)
            level_before = c.session.pool_level if supports_pool else None
            stalled = bool(supports_pool and level_before == 0)
            if trace is not None and stalled:
                trace.root.tags["stalled"] = "1"
            t0 = time.perf_counter()
            result = c.session.run_round(
                updates, dropouts, rng, **phase_kwargs
            )
            online = time.perf_counter() - t0
            if c.metrics is not None:
                c.metrics.record_round(
                    c.cohort_id, online, stalled, level_before
                )
            if c.refiller is not None:
                c.refiller.notify()
            # close() may have raced this round: the work is done and the
            # session already committed its pool accounting, so return
            # the result and leave the cohort CLOSED rather than blowing
            # up the success path on an AGGREGATING -> IDLE transition
            # the close made invalid.
            c._complete_round(stalled)
            if c.tracer is not None:
                c.tracer.finish(trace)
            return result
        except Exception as exc:
            if c.tracer is not None:
                c.tracer.finish(trace, error=exc)
            # A failed round (e.g. survivors below U) leaves the cohort
            # ready for the next round, matching session semantics.
            with c._phase_lock:
                if c.phase is not CohortPhase.CLOSED:
                    c.phase = CohortPhase.IDLE
            raise


class BufferedAsyncRoundEngine(RoundEngine):
    """Buffered asynchronous secure aggregation (paper Appendix F).

    Clients :meth:`submit` real-valued updates tagged with the round at
    which they downloaded the model; the K-th arrival seals the buffer
    and drains it through the session's pooled
    :meth:`~repro.asyncfl.pooled.BufferedShardSession.drain` path.  The
    drain's staleness weights and stochastic quantization come from the
    deterministic :func:`drain_stream`, so the aggregate is
    bit-identical to the reference
    :class:`~repro.asyncfl.secure_aggregator.AsyncSecureAggregator`
    fed the same deliveries and stream — on every transport lane.

    Membership is elastic between drains: :meth:`join` admits a new
    member id, :meth:`leave` retires one; both re-key the session's mask
    geometry and hand warm re-encoding to the background refiller.

    Lock order is ``_drain_lock`` before ``_lock`` wherever both are
    held; :meth:`submit` takes only ``_lock`` (and hands a sealed batch
    to the drain path *after* releasing it), so fills never wait on a
    drain in flight.
    """

    kind = "buffered"

    def __init__(
        self,
        gf: FiniteField,
        num_users: int,
        buffer_size: Optional[int] = None,
        staleness_fn: str = "constant",
        staleness_alpha: float = 1.0,
        staleness_levels: int = 1 << 6,
        quant_levels: int = 1 << 16,
        quant_clip: Optional[float] = None,
        seed: int = 0,
        privacy: int = 1,
        dropout_tolerance: int = 1,
        transition_history: int = 64,
    ):
        super().__init__()
        if num_users < 2:
            raise ProtocolError(f"need >= 2 members, got {num_users}")
        capacity = num_users if buffer_size is None else int(buffer_size)
        if not 1 <= capacity <= num_users:
            raise ProtocolError(
                f"buffer_size must be in [1, num_users={num_users}], "
                f"got {capacity}"
            )
        self.gf = gf
        self.buffer_capacity = capacity
        self.staleness = build_staleness(
            staleness_fn, alpha=staleness_alpha, levels=staleness_levels
        )
        self.quantizer = ModelQuantizer(
            gf, QuantizationConfig(levels=quant_levels, clip=quant_clip)
        )
        if quant_clip is not None:
            # A full buffer of clipped updates, each weighted by at most
            # the top staleness level, must not wrap the field.
            self.quantizer.check_budget(
                capacity * self.staleness.levels, quant_clip
            )
        self.seed = int(seed)
        self.privacy = int(privacy)
        self.dropout_tolerance = int(dropout_tolerance)
        self.model_dim: Optional[int] = None
        self._members: Set[int] = set(range(num_users))
        self._next_member_id = int(num_users)
        self._lock = threading.Lock()
        self._drain_lock = threading.Lock()
        self._buffer: UpdateBuffer[np.ndarray] = UpdateBuffer(capacity)
        self._pending_dropouts: Set[int] = set()
        self._fill_started_at: Optional[float] = None
        self._round = 0  # server round t; one drain advances it by one
        self.drains = 0
        self.membership_events: Dict[str, int] = {"join": 0, "leave": 0}
        self.round_phase = RoundPhase.IDLE
        self.transitions: Deque[PhaseTransition] = deque(
            maxlen=transition_history
        )

    # ------------------------------------------------------------------
    def bind(self, cohort) -> None:
        super().bind(cohort)
        session = cohort.session
        if not hasattr(session, "drain") or not hasattr(session, "rekey"):
            raise ProtocolError(
                "buffered cohorts need a drain-capable session "
                "(protocol 'lightsecagg' over a buffered shard session)"
            )
        dim = getattr(session, "model_dim", None)
        if dim is None:
            dim = session.plan.dim
        self.model_dim = int(dim)
        session_users = getattr(session, "num_users", None)
        if session_users is not None and int(session_users) != len(
            self._members
        ):
            raise ProtocolError(
                f"engine has {len(self._members)} members but the session "
                f"was built for {session_users} users"
            )

    def _set_phase(self, phase: RoundPhase, round_index: int) -> None:
        self.round_phase = phase
        self.transitions.append(
            PhaseTransition(phase=phase, round_index=round_index)
        )

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def submit(
        self,
        user_id: int,
        update: np.ndarray,
        download_round: Optional[int] = None,
        dropouts: Optional[Set[int]] = None,
    ) -> Dict:
        """Buffer one client update; drain when the buffer fills.

        ``download_round`` is the paper's ``t_i`` — the server round at
        which the client downloaded the model it trained on; it defaults
        to the current round (freshest).  ``dropouts`` optionally names
        member ids the client observed unreachable; they are excluded
        from the *recovery* phase of the drain this submission lands in.

        Returns a JSON-serializable dict: either the buffer state
        (``drained=False``) or, for the sealing submission, the full
        drain outcome including the real-valued aggregate.
        """
        from repro.service.cohort import CohortPhase

        c = self.cohort
        update = np.asarray(update, dtype=np.float64)
        if self.model_dim is not None and update.shape != (self.model_dim,):
            raise ProtocolError(
                f"update shape {update.shape} != ({self.model_dim},)"
            )
        with self._lock:
            if c.phase is CohortPhase.CLOSED:
                raise ProtocolError(
                    f"cohort {c.cohort_id} is closed; no further updates"
                )
            if int(user_id) not in self._members:
                raise ProtocolError(
                    f"cohort {c.cohort_id} has no member {user_id}"
                )
            t = self._round
            dl = t if download_round is None else int(download_round)
            if not 0 <= dl <= t:
                raise ProtocolError(
                    f"download_round {dl} outside [0, {t}] for member "
                    f"{user_id}"
                )
            if len(self._buffer) == 0:
                self._fill_started_at = time.time()
            if self.round_phase is RoundPhase.IDLE:
                self._set_phase(RoundPhase.FILLING, self.drains)
            self._buffer.push(
                BufferedUpdate(int(user_id), dl, update)
            )
            for member in dropouts or ():
                self._pending_dropouts.add(int(member))
            fill = len(self._buffer)
            if c.metrics is not None:
                c.metrics.record_submit(
                    c.cohort_id, fill, self.buffer_capacity
                )
            if not self._buffer.is_full:
                return {
                    "drained": False,
                    "buffer_fill": fill,
                    "buffer_capacity": self.buffer_capacity,
                    "round": t,
                }
            items = self._buffer.drain()
            recovery_dropouts = set(self._pending_dropouts)
            self._pending_dropouts.clear()
            fill_started = self._fill_started_at
            self._fill_started_at = None
            sealed_at = time.time()
            self._set_phase(RoundPhase.SEALED, self.drains)
        # The K-th submitter carries the drain; later submitters are
        # already filling the next buffer under _lock.
        return self._drain(items, recovery_dropouts, fill_started, sealed_at)

    def _drain(
        self,
        items: List[BufferedUpdate],
        dropout_members: Set[int],
        fill_started: Optional[float],
        sealed_at: float,
    ) -> Dict:
        from repro.service.cohort import CohortPhase

        c = self.cohort
        with self._drain_lock:
            with self._lock:
                drain_index = self.drains
                members = sorted(self._members)
                t = self._round
            rng = drain_stream(self.seed, c.cohort_id, drain_index)
            deliveries = [
                AsyncDelivery(
                    user_id=item.user_id,
                    staleness=t - item.download_round,
                    update=item.payload,
                )
                for item in items
            ]
            trace = None
            if c.tracer is not None:
                trace = c.tracer.start_round(c.cohort_id, drain_index)
                if trace is not None:
                    trace.root.tags["kind"] = "buffered"
                    trace.root.tags["transport"] = getattr(
                        getattr(c.session, "transport", None), "kind",
                        "local",
                    )
                    if fill_started is not None:
                        # The fill predates the trace: record it as a
                        # retroactive span so the timeline shows how long
                        # the buffer took to reach K.
                        trace.add_span(
                            Span(
                                "buffer_fill",
                                start=fill_started,
                                end=sealed_at,
                                tags={"updates": str(len(items))},
                            )
                        )
            c._advance(CohortPhase.IDLE, CohortPhase.AGGREGATING)
            try:
                with self._lock:
                    self._set_phase(RoundPhase.AGGREGATING, drain_index)
                prepared = prepare_deliveries(
                    deliveries,
                    self.model_dim,
                    self.quantizer,
                    self.staleness,
                    rng,
                )
                total_weight = sum(p.weight for p in prepared)
                if total_weight == 0:
                    raise ProtocolError(
                        "all staleness weights quantized to zero"
                    )
                live = [p for p in prepared if p.weight != 0]
                weights = np.asarray(
                    [p.weight for p in live], dtype=np.uint64
                )
                updates = np.stack([p.quantized for p in live])
                slot_of = {member: i for i, member in enumerate(members)}
                recovery_slots = {
                    slot_of[m] for m in dropout_members if m in slot_of
                }
                supports_pool = getattr(c.session, "supports_pool", False)
                level_before = (
                    c.session.pool_level if supports_pool else None
                )
                stalled = bool(supports_pool and level_before == 0)
                if trace is not None and stalled:
                    trace.root.tags["stalled"] = "1"
                t0 = time.perf_counter()
                with span(
                    "drain",
                    updates=str(len(live)),
                    weight=str(int(total_weight)),
                ):
                    result = c.session.drain(
                        weights, updates, recovery_slots
                    )
                online = time.perf_counter() - t0
                aggregate = (
                    self.quantizer.dequantize(result.aggregate)
                    / total_weight
                )
                with self._lock:
                    self._round += 1
                    self.drains += 1
                    new_round = self._round
                if c.metrics is not None:
                    c.metrics.record_round(
                        c.cohort_id, online, stalled, level_before
                    )
                    c.metrics.record_drain(
                        c.cohort_id,
                        [d.staleness for d in deliveries],
                    )
                if c.refiller is not None:
                    c.refiller.notify()
                c._complete_round(stalled)
                with self._lock:
                    self._set_phase(
                        RoundPhase.FILLING
                        if len(self._buffer)
                        else RoundPhase.IDLE,
                        self.drains,
                    )
                if c.tracer is not None:
                    c.tracer.finish(trace)
                return {
                    "drained": True,
                    "drain_index": drain_index,
                    "round": new_round,
                    "num_updates": len(items),
                    "total_weight": int(total_weight),
                    "weights": [int(p.weight) for p in prepared],
                    "staleness": [int(d.staleness) for d in deliveries],
                    "survivors": [int(s) for s in result.survivors],
                    "aggregate": aggregate,
                }
            except Exception as exc:
                if c.tracer is not None:
                    c.tracer.finish(trace, error=exc)
                with c._phase_lock:
                    if c.phase is not CohortPhase.CLOSED:
                        c.phase = CohortPhase.IDLE
                with self._lock:
                    self._set_phase(
                        RoundPhase.FILLING
                        if len(self._buffer)
                        else RoundPhase.IDLE,
                        self.drains,
                    )
                raise

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def _validate_geometry(self, num_users: int) -> None:
        try:
            LSAParams.from_guarantees(
                num_users,
                privacy=self.privacy,
                dropout_tolerance=self.dropout_tolerance,
            )
        except ParameterError as exc:
            raise ProtocolError(
                f"infeasible membership change to N={num_users} with "
                f"T={self.privacy}, D={self.dropout_tolerance}: {exc}"
            ) from exc

    def join(self) -> Dict:
        """Admit one new member; re-keys mask shares for the new set.

        Member ids are allocated monotonically (never reused), so a
        departed member's id can never be confused with a new joiner's.
        The session re-key invalidates pool entries encoded for the old
        geometry; the refiller nudge re-encodes them warm off-path.
        """
        from repro.service.cohort import CohortPhase

        c = self.cohort
        with self._drain_lock:
            with self._lock:
                if c.phase is CohortPhase.CLOSED:
                    raise ProtocolError(
                        f"cohort {c.cohort_id} is closed; membership frozen"
                    )
                new_id = self._next_member_id
                new_n = len(self._members) + 1
                self._validate_geometry(new_n)
                invalidated = int(c.session.rekey(new_n))
                self._members.add(new_id)
                self._next_member_id += 1
                self.membership_events["join"] += 1
        if c.metrics is not None:
            c.metrics.record_membership(c.cohort_id, "join")
        if c.refiller is not None:
            c.refiller.notify()
        return {
            "user_id": new_id,
            "num_users": new_n,
            "invalidated_rounds": invalidated,
        }

    def leave(self, user_id: int) -> Dict:
        """Retire one member; re-keys mask shares for the smaller set.

        Updates the departing member already buffered stay in the
        buffer — their data was handed over before the departure — but
        the member no longer appears in recovery, and pending recovery
        dropouts naming it are dropped at drain time.
        """
        from repro.service.cohort import CohortPhase

        c = self.cohort
        user_id = int(user_id)
        with self._drain_lock:
            with self._lock:
                if c.phase is CohortPhase.CLOSED:
                    raise ProtocolError(
                        f"cohort {c.cohort_id} is closed; membership frozen"
                    )
                if user_id not in self._members:
                    raise ProtocolError(
                        f"cohort {c.cohort_id} has no member {user_id}"
                    )
                new_n = len(self._members) - 1
                if new_n < 2:
                    raise ProtocolError(
                        "cannot drop below 2 members"
                    )
                if new_n < self.buffer_capacity:
                    raise ProtocolError(
                        f"cannot leave: {new_n} members would be fewer "
                        f"than the buffer capacity "
                        f"{self.buffer_capacity}"
                    )
                self._validate_geometry(new_n)
                invalidated = int(c.session.rekey(new_n))
                self._members.discard(user_id)
                self.membership_events["leave"] += 1
        if c.metrics is not None:
            c.metrics.record_membership(c.cohort_id, "leave")
        if c.refiller is not None:
            c.refiller.notify()
        return {
            "user_id": user_id,
            "num_users": new_n,
            "invalidated_rounds": invalidated,
        }

    # ------------------------------------------------------------------
    def status_fields(self) -> Dict:
        with self._lock:
            return {
                "kind": self.kind,
                "round_phase": self.round_phase.value,
                "buffer_fill": len(self._buffer),
                "buffer_capacity": self.buffer_capacity,
                "drains": self.drains,
                "server_round": self._round,
                "num_users": len(self._members),
                "members": sorted(self._members),
                "membership_events": dict(self.membership_events),
            }

    def members(self) -> List[int]:
        with self._lock:
            return sorted(self._members)

    def close(self) -> None:
        with self._lock:
            self._set_phase(RoundPhase.CLOSED, self.drains)
