"""Transport abstraction between the shard coordinator and shard sessions.

PR 3's :class:`~repro.service.sharding.ShardedSession` called each
per-shard session directly, so every shard round and every refill encode
ran in one Python process, serialized by the GIL.  This module makes the
coordinator/session boundary explicit so the *same* coordinator code
drives either:

* :class:`InlineTransport` — the sessions live in this process and are
  called directly.  Bit-identical to the pre-transport behaviour
  (including rng forwarding), and the baseline the process backend is
  verified against.
* :class:`ProcessPoolTransport` — each shard's session is pinned inside
  a long-lived ``multiprocessing`` worker and spoken to in
  :mod:`repro.wire` frames over a duplex pipe.  Round requests are
  *scattered* to all workers before any result is *gathered*, so shard
  rounds run on separate cores; refills run on a dedicated thread inside
  each worker, so pool top-ups overlap both with other shards' encodes
  and with rounds on the same worker.
* :class:`~repro.service.socket_transport.SocketTransport` (its own
  module) — the same frames over TCP to standalone ``repro
  shard-worker`` hosts, adding heartbeat supervision and reconnect with
  session re-pin; the multi-host deployment backend.

Both backends expose the per-shard sessions as *handles* with the
:class:`~repro.protocols.base.ProtocolSession` pool surface
(``pool_level`` / ``needs_refill`` / ``refill`` / ``stats`` ...), so the
background refiller and the metrics layer treat local sessions and
remote workers uniformly.  Process handles serve those properties from a
cache refreshed by every frame that crosses the wire — polling
``needs_refill`` never costs a round trip.

Sessions are constructed *in the worker* from a picklable
:class:`ShardSessionSpec`, never shipped across the boundary; the inline
backend builds from the same spec, which is what makes "process-backed
rounds are bit-identical to inline" hold by construction (identical
seeded rng streams on both sides).

Shutdown contract: :meth:`ShardTransport.close` delivers a
:class:`~repro.wire.Shutdown` frame to every worker; a worker finishes a
refill already in flight (its material still lands in the pool and its
response frame is still delivered), closes its sessions, acknowledges,
and exits.  Workers are daemons and are terminated as a last resort if
they fail to acknowledge within the shutdown timeout.
"""

from __future__ import annotations

import abc
import itertools
import multiprocessing
import os
import queue
import socket as _socket
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import ProtocolError, TransportError, WireError
from repro.field.arithmetic import FiniteField
from repro.field.prime import DEFAULT_PRIME
from repro.obs import Span, current_trace, span
from repro.protocols.base import AggregationResult, SessionStats
from repro.wire import (
    ErrorFrame,
    PoolSnapshot,
    RefillRequest,
    RekeyRequest,
    SegmentArena,
    ShardDrainRequest,
    ShardRoundRequest,
    ShardRoundResult,
    ShmArrayRef,
    ShmRegistry,
    SnapshotRequest,
    Shutdown,
    WorkerSpan,
    decode_message,
    encode_message,
)

_HOSTNAME = _socket.gethostname()

TRANSPORT_KINDS = ("inline", "process", "socket", "shm")

#: Element encodings a transport can put on the wire: ``raw`` ships
#: little-endian words, ``packed`` bit-packs at the data's width (peers
#: that never advertised CAP_PACKED_ARRAYS still get raw frames).
WIRE_FORMATS = ("raw", "packed")


def _absorb_worker_span(trace, shard_id: int, ws, kind: str) -> None:
    """Stitch a worker-reported timing block into the coordinator's trace.

    The worker's ``WorkerSpan`` becomes a ``shard_compute[i]`` span tagged
    with the *remote* pid/host (the proof the work ran off-process), with
    its pipe/queue dwell as a ``queue_wait`` child leading into compute.
    Worker and coordinator clocks are the same host clock for process/shm
    workers and close enough for sockets — good enough for phase bars.
    """
    if trace is None or ws is None:
        return
    compute = Span(
        f"shard_compute[{shard_id}]",
        start=ws.compute_start_unix,
        end=ws.compute_start_unix + ws.compute_seconds,
        tags={"pid": str(ws.pid), "host": ws.host, "transport": kind},
    )
    if ws.queue_wait_seconds > 0:
        compute.children.append(
            Span(
                "queue_wait",
                start=ws.compute_start_unix - ws.queue_wait_seconds,
                end=ws.compute_start_unix,
                tags={"pid": str(ws.pid), "host": ws.host},
            )
        )
    trace.add_span(compute)


@dataclass(frozen=True)
class ShardSessionSpec:
    """Everything needed to build one shard's protocol session anywhere.

    Pure data (picklable) so a worker process can construct the session
    locally.  ``seed`` is the full derivation path — typically
    ``(service_seed, cohort_id, shard_id)`` — fed to
    ``np.random.default_rng``, so inline and process backends draw
    identical mask/padding streams and their pools are bit-identical.
    """

    protocol: str  # "lightsecagg" | "lightsecagg-buffered" | "naive"
    num_users: int
    shard_dim: int
    privacy: int
    dropout_tolerance: int
    pool_size: int
    low_water: int
    seed: Tuple[int, ...]
    field_modulus: int = DEFAULT_PRIME

    @property
    def supports_pool(self) -> bool:
        return self.protocol in ("lightsecagg", "lightsecagg-buffered")

    @property
    def supports_drains(self) -> bool:
        return self.protocol == "lightsecagg-buffered"

    def build(self, gf: Optional[FiniteField] = None):
        """Construct the protocol and open its session."""
        from repro.protocols.lightsecagg.params import LSAParams
        from repro.protocols.lightsecagg.protocol import LightSecAgg
        from repro.protocols.naive import NaiveAggregation

        gf = gf if gf is not None else FiniteField(self.field_modulus)
        if self.protocol == "naive":
            protocol = NaiveAggregation(gf, self.num_users, self.shard_dim)
        elif self.protocol in ("lightsecagg", "lightsecagg-buffered"):
            params = LSAParams.from_guarantees(
                self.num_users,
                privacy=self.privacy,
                dropout_tolerance=self.dropout_tolerance,
            )
            protocol = LightSecAgg(gf, params, self.shard_dim)
        else:
            raise ProtocolError(f"unknown shard protocol {self.protocol!r}")
        rng = np.random.default_rng(list(self.seed))
        if self.protocol == "lightsecagg-buffered":
            from repro.asyncfl.pooled import BufferedShardSession

            return BufferedShardSession(
                protocol,
                pool_size=self.pool_size,
                rng=rng,
                low_water=self.low_water,
            )
        return protocol.session(
            pool_size=self.pool_size,
            rng=rng,
            low_water=self.low_water,
        )


class ShardTransport(abc.ABC):
    """Scatter/gather execution of shard rounds and refills.

    The coordinator (``ShardedSession``) owns the :class:`ShardPlan` and
    the scatter/gather of *vectors*; the transport owns the scatter and
    gather of *work*: one round request per shard, one refill per needy
    shard, against sessions living wherever the backend puts them.
    """

    kind: str = "abstract"

    @property
    @abc.abstractmethod
    def shard_handles(self) -> Sequence:
        """Session-like objects, one per shard, in shard order."""

    @property
    def num_shards(self) -> int:
        return len(self.shard_handles)

    @abc.abstractmethod
    def run_all(
        self,
        per_shard_updates: List[Dict[int, np.ndarray]],
        dropouts: Set[int],
        rng: Optional[np.random.Generator] = None,
        **phase_kwargs,
    ) -> List[AggregationResult]:
        """One logical round: every shard sees the same dropout sets."""

    @abc.abstractmethod
    def refill_all(self, rounds: Optional[int] = None) -> int:
        """Top up every shard's pool; returns the max rounds added."""

    def drain_all(
        self,
        weights: np.ndarray,
        per_shard_updates: List[np.ndarray],
        recovery_dropouts: Set[int],
    ) -> List[AggregationResult]:
        """One buffered drain across every shard (buffered sessions only).

        ``weights`` is the shared ``(B,)`` staleness-weight vector;
        ``per_shard_updates[s]`` the ``(B, shard_width)`` slice of the
        unweighted quantized deliveries, rows in buffer order.
        """
        raise TransportError(
            f"{self.kind} transport does not support buffered drains"
        )

    def rekey_all(self, num_users: int) -> int:
        """Re-key every shard for a new member count; returns the total
        pooled rounds invalidated (buffered sessions only)."""
        raise TransportError(
            f"{self.kind} transport does not support buffered drains"
        )

    @abc.abstractmethod
    def close(self) -> None:
        """Release all shard sessions (idempotent)."""

    @property
    @abc.abstractmethod
    def closed(self) -> bool: ...


class InlineTransport(ShardTransport):
    """Direct calls into sessions owned by this process (the baseline)."""

    kind = "inline"

    def __init__(self, sessions: Sequence, metrics=None, cohort_id: int = 0):
        if not sessions:
            raise ProtocolError("transport needs at least one shard session")
        self._sessions = list(sessions)
        self._metrics = metrics
        self._cohort_id = int(cohort_id)

    @classmethod
    def from_specs(
        cls,
        specs: Sequence[ShardSessionSpec],
        gf: Optional[FiniteField] = None,
        metrics=None,
        cohort_id: int = 0,
    ) -> "InlineTransport":
        return cls(
            [spec.build(gf) for spec in specs],
            metrics=metrics,
            cohort_id=cohort_id,
        )

    @property
    def shard_handles(self) -> Sequence:
        return self._sessions

    @property
    def gf(self) -> FiniteField:
        return self._sessions[0].gf

    def run_all(self, per_shard_updates, dropouts, rng=None, **phase_kwargs):
        t0 = time.perf_counter()
        misses_before = sum(s.stats.pool_misses for s in self._sessions)
        results = []
        for shard_id, (session, updates) in enumerate(
            zip(self._sessions, per_shard_updates)
        ):
            # Inline shards compute on this thread: the span nests any
            # offline_refill/mask_encode the session opens underneath it.
            with span(
                f"shard_compute[{shard_id}]",
                pid=str(os.getpid()),
                host=_HOSTNAME,
                transport=self.kind,
            ):
                results.append(
                    session.run_round(
                        updates, set(dropouts), rng, **phase_kwargs
                    )
                )
        if self._metrics is not None:
            # A shard whose round ran an inline refill is a stalled shard,
            # the same quantity the process backend reports per round.
            stalled = (
                sum(s.stats.pool_misses for s in self._sessions)
                - misses_before
            )
            self._metrics.record_transport_round(
                self.kind, time.perf_counter() - t0, bytes_sent=0,
                bytes_received=0, stalled_shards=stalled,
            )
        return results

    def refill_all(self, rounds: Optional[int] = None) -> int:
        return max(session.refill(rounds) for session in self._sessions)

    def drain_all(self, weights, per_shard_updates, recovery_dropouts):
        if len(per_shard_updates) != len(self._sessions):
            raise ProtocolError(
                f"expected {len(self._sessions)} shard update slices, got "
                f"{len(per_shard_updates)}"
            )
        t0 = time.perf_counter()
        misses_before = sum(s.stats.pool_misses for s in self._sessions)
        results = []
        for shard_id, (session, updates) in enumerate(
            zip(self._sessions, per_shard_updates)
        ):
            if not hasattr(session, "drain"):
                raise TransportError(
                    f"shard {shard_id} session does not support drains"
                )
            with span(
                f"shard_compute[{shard_id}]",
                pid=str(os.getpid()),
                host=_HOSTNAME,
                transport=self.kind,
            ):
                results.append(
                    session.drain(weights, updates, set(recovery_dropouts))
                )
        if self._metrics is not None:
            stalled = (
                sum(s.stats.pool_misses for s in self._sessions)
                - misses_before
            )
            self._metrics.record_transport_round(
                self.kind, time.perf_counter() - t0, bytes_sent=0,
                bytes_received=0, stalled_shards=stalled,
            )
        return results

    def rekey_all(self, num_users: int) -> int:
        invalidated = 0
        for shard_id, session in enumerate(self._sessions):
            if not hasattr(session, "rekey"):
                raise TransportError(
                    f"shard {shard_id} session does not support re-keying"
                )
            invalidated += session.rekey(num_users)
        return invalidated

    def close(self) -> None:
        for session in self._sessions:
            session.close()

    @property
    def closed(self) -> bool:
        return any(session.closed for session in self._sessions)


# ----------------------------------------------------------------------
# process backend: worker side
# ----------------------------------------------------------------------
def _worker_serve(conn, specs: Dict[int, ShardSessionSpec]) -> None:
    """Serve loop of one shard worker process.

    The main thread handles round requests (the latency-critical path);
    refills run on a single local thread so a round arriving mid-refill
    is served as soon as the session's pool lock allows, exactly like the
    in-process consumer/refiller pairing.  All sends share one lock; all
    responses carry their request's id, so ordering across the two
    threads is irrelevant.

    Element encodings mirror the coordinator's: a packed round request
    gets a packed result; a request whose updates arrived by
    shared-memory reference gets its aggregate placed at the request's
    ``result_ref`` with only the reference framed back.  The worker's
    segment attachments are cache-per-process (:class:`ShmRegistry`) and
    detached on exit; it never unlinks — segments belong to the
    coordinator.
    """
    gf = None
    sessions = {}
    for shard_id, spec in sorted(specs.items()):
        if gf is None:
            gf = FiniteField(spec.field_modulus)
        sessions[shard_id] = spec.build(gf)
    send_lock = threading.Lock()
    registry = ShmRegistry()

    def send(message, request_id: int) -> None:
        frame = encode_message(message, request_id)
        with send_lock:
            conn.send_bytes(frame)

    def snapshot_of(shard_id: int, rounds_added: int = 0) -> PoolSnapshot:
        state = sessions[shard_id].state_snapshot()
        return PoolSnapshot(
            shard_id=shard_id,
            pool_level=state["pool_level"],
            pool_size=state["pool_size"],
            rounds_added=rounds_added,
            closed=state["closed"],
            stats=state["stats"],
        )

    refill_queue: "queue.Queue" = queue.Queue()

    def refill_loop() -> None:
        while True:
            item = refill_queue.get()
            if item is None:
                return
            request_id, shard_id, rounds = item
            try:
                added = sessions[shard_id].refill(rounds)
                send(snapshot_of(shard_id, rounds_added=added), request_id)
            except Exception as exc:  # noqa: BLE001 - forwarded to peer
                send(ErrorFrame.from_exception(shard_id, exc), request_id)

    refiller = threading.Thread(
        target=refill_loop, name="shard-worker-refill", daemon=True
    )
    refiller.start()

    try:
        while True:
            try:
                frame = conn.recv_bytes()
            except (EOFError, OSError):
                return  # coordinator died; daemon exit
            request_id, message = decode_message(frame, shm=registry.resolve)
            if isinstance(message, Shutdown):
                # Contract: a refill in flight completes (and its response
                # is delivered) before the shutdown is acknowledged.
                refill_queue.put(None)
                refiller.join()
                for session in sessions.values():
                    session.close()
                send(Shutdown(), request_id)
                return
            if isinstance(message, RefillRequest):
                refill_queue.put(
                    (request_id, message.shard_id, message.rounds)
                )
                continue
            try:
                if isinstance(message, SnapshotRequest):
                    send(snapshot_of(message.shard_id), request_id)
                elif isinstance(message, ShardRoundRequest):
                    session = sessions[message.shard_id]
                    state = session.state_snapshot()
                    stalled = bool(
                        state["supports_pool"] and state["pool_level"] == 0
                    )
                    compute_start = time.time() if message.trace_id else 0.0
                    result = session.run_round(
                        message.updates_dict(),
                        set(message.dropouts),
                        None,
                        **(
                            {"offline_dropouts": message.offline_dropouts}
                            if message.offline_dropouts
                            else {}
                        ),
                    )
                    worker_span = None
                    if message.trace_id:
                        # Rounds are served straight off the pipe on this
                        # thread, so there is no measurable queue dwell.
                        worker_span = WorkerSpan(
                            trace_id=message.trace_id,
                            pid=os.getpid(),
                            host=_HOSTNAME,
                            queue_wait_seconds=0.0,
                            compute_start_unix=compute_start,
                            compute_seconds=time.time() - compute_start,
                        )
                    # Post-round state via state_snapshot(): reading the
                    # level and stats piecemeal would race this worker's
                    # own refill thread and could ship a torn pair.
                    after = session.state_snapshot()
                    aggregate_ref = None
                    if message.result_ref is not None:
                        out = registry.ndarray(message.result_ref)
                        np.copyto(
                            out,
                            np.asarray(
                                result.aggregate, dtype=np.uint64
                            ).reshape(message.result_ref.shape),
                        )
                        aggregate_ref = message.result_ref
                    send(
                        ShardRoundResult.from_result(
                            message.shard_id,
                            message.round_id,
                            result,
                            stalled=stalled,
                            pool_level=after["pool_level"],
                            stats=after["stats"],
                            packed=message.packed,
                            aggregate_ref=aggregate_ref,
                            worker_span=worker_span,
                        ),
                        request_id,
                    )
                elif isinstance(message, ShardDrainRequest):
                    session = sessions[message.shard_id]
                    if not hasattr(session, "drain"):
                        raise TransportError(
                            f"shard {message.shard_id} session does not "
                            "support drains"
                        )
                    state = session.state_snapshot()
                    stalled = bool(
                        state["supports_pool"] and state["pool_level"] == 0
                    )
                    compute_start = time.time() if message.trace_id else 0.0
                    result = session.drain(
                        message.weights,
                        message.updates,
                        set(message.recovery_dropouts),
                    )
                    worker_span = None
                    if message.trace_id:
                        worker_span = WorkerSpan(
                            trace_id=message.trace_id,
                            pid=os.getpid(),
                            host=_HOSTNAME,
                            queue_wait_seconds=0.0,
                            compute_start_unix=compute_start,
                            compute_seconds=time.time() - compute_start,
                        )
                    after = session.state_snapshot()
                    send(
                        ShardRoundResult.from_result(
                            message.shard_id,
                            message.drain_id,
                            result,
                            stalled=stalled,
                            pool_level=after["pool_level"],
                            stats=after["stats"],
                            packed=message.packed,
                            worker_span=worker_span,
                        ),
                        request_id,
                    )
                elif isinstance(message, RekeyRequest):
                    session = sessions[message.shard_id]
                    if not hasattr(session, "rekey"):
                        raise TransportError(
                            f"shard {message.shard_id} session does not "
                            "support re-keying"
                        )
                    invalidated = session.rekey(message.num_users)
                    send(
                        snapshot_of(
                            message.shard_id, rounds_added=-invalidated
                        ),
                        request_id,
                    )
                else:
                    raise TransportError(
                        f"worker cannot serve {type(message).__name__}"
                    )
            except Exception as exc:  # noqa: BLE001 - forwarded to peer
                shard_id = getattr(message, "shard_id", 0)
                send(ErrorFrame.from_exception(shard_id, exc), request_id)
    finally:
        refill_queue.put(None)
        registry.close()


# ----------------------------------------------------------------------
# process backend: coordinator side
# ----------------------------------------------------------------------
class _WorkerClient:
    """One worker process plus a response multiplexer over its pipe.

    Multiple coordinator threads (the online consumer, the background
    refiller) may each be awaiting a different response on the same
    connection.  A dedicated receiver thread drains *every* incoming
    frame into ``_responses`` keyed by request id and wakes waiters, so
    out-of-order completion (a round result overtaking a slow refill)
    routes correctly.

    The always-draining receiver is also what makes the scatter phase
    deadlock-free: a worker hosting several shards can flush the result
    of shard ``k`` (the coordinator side of its pipe is always being
    read) and return to its own ``recv`` loop, which in turn unblocks
    the coordinator's possibly-buffer-full send of shard ``k+1``'s
    request.  Neither side ever holds a full pipe while waiting for the
    other to read first, regardless of frame size vs. OS pipe buffer.
    """

    def __init__(self, process, conn, shm_resolver=None):
        self.process = process
        self.conn = conn
        self.bytes_sent = 0
        self.bytes_received = 0
        self._shm_resolver = shm_resolver
        self._send_lock = threading.Lock()
        self._cv = threading.Condition()
        self._responses: Dict[int, object] = {}
        self._broken: Optional[BaseException] = None
        self._receiver = threading.Thread(
            target=self._recv_loop,
            name=f"{process.name}-recv",
            daemon=True,
        )
        self._receiver.start()

    def _recv_loop(self) -> None:
        while True:
            try:
                frame = self.conn.recv_bytes()
                request_id, message = decode_message(
                    frame, shm=self._shm_resolver
                )
            except (EOFError, OSError, WireError) as exc:
                with self._cv:
                    self._broken = exc
                    self._cv.notify_all()
                return
            with self._cv:
                self.bytes_received += len(frame)
                self._responses[request_id] = (message, len(frame))
                self._cv.notify_all()

    def send(self, message, request_id: int) -> int:
        frame = encode_message(message, request_id)
        try:
            with self._send_lock:
                self.conn.send_bytes(frame)
                self.bytes_sent += len(frame)
        except (OSError, ValueError) as exc:
            raise TransportError(
                f"failed to send {type(message).__name__} to worker: {exc}"
            ) from exc
        return len(frame)

    def receive(self, request_id: int, timeout: Optional[float] = None):
        """Block for one response; returns ``(message, frame_bytes)``."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while True:
                if request_id in self._responses:
                    return self._responses.pop(request_id)
                if self._broken is not None:
                    raise TransportError(
                        f"worker connection broken with response "
                        f"{request_id} outstanding: {self._broken!r}"
                    )
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TransportError(
                            f"timed out awaiting response {request_id}"
                        )
                self._cv.wait(remaining)

    def join_receiver(self, timeout: Optional[float] = None) -> None:
        """Join the receiver thread (it exits on worker EOF)."""
        self._receiver.join(timeout)


class ProcessShardHandle:
    """Session-surface proxy for one shard pinned in a worker process.

    Pool properties are served from a cache refreshed by every response
    frame for this shard (round results, refill snapshots), so the
    background refiller's ``needs_refill`` polling costs no wire traffic.
    ``refill_begin`` / ``refill_join`` split the refill into a scatter
    and a gather half so the refiller can overlap top-ups across shards.
    """

    def __init__(self, transport: "ProcessPoolTransport", shard_id: int,
                 spec: ShardSessionSpec):
        self._transport = transport
        self.shard_id = shard_id
        self.spec = spec
        self.stats = SessionStats()
        self.pool_size = spec.pool_size
        self.low_water = spec.low_water
        self._pool_level = 0
        self._closed = False

    # -- cache maintenance (called by the transport) --------------------
    def _absorb(self, pool_level: int, stats: SessionStats,
                closed: Optional[bool] = None) -> None:
        self._pool_level = int(pool_level)
        self.stats = stats
        if closed is not None:
            self._closed = closed

    # -- ProtocolSession pool surface -----------------------------------
    @property
    def supports_pool(self) -> bool:
        return self.spec.supports_pool

    @property
    def pool_level(self) -> int:
        return self._pool_level

    @property
    def closed(self) -> bool:
        return self._closed or self._transport.closed

    @property
    def needs_refill(self) -> bool:
        if not self.supports_pool or self.closed:
            return False
        level = self.pool_level
        return level < self.pool_size and level <= self.low_water

    def refill(self, rounds: Optional[int] = None) -> int:
        return self.refill_join(self.refill_begin(rounds))

    def refill_begin(self, rounds: Optional[int] = None) -> int:
        """Scatter half: dispatch the refill, return a join ticket."""
        if self.closed:
            raise ProtocolError("session is closed")
        request_id, _ = self._transport._request(
            self.shard_id, RefillRequest(self.shard_id, rounds)
        )
        return request_id

    def refill_join(self, ticket: int) -> int:
        """Gather half: block until the worker's refill completes."""
        message, _ = self._transport._await(self.shard_id, ticket)
        if isinstance(message, ErrorFrame):
            message.raise_()
        self._absorb(message.pool_level, message.stats, message.closed)
        return int(message.rounds_added)

    def sync(self) -> "ProcessShardHandle":
        """Refresh the cache with an explicit snapshot round trip."""
        request_id, _ = self._transport._request(
            self.shard_id, SnapshotRequest(self.shard_id)
        )
        message, _ = self._transport._await(self.shard_id, request_id)
        if isinstance(message, ErrorFrame):
            message.raise_()
        self._absorb(message.pool_level, message.stats, message.closed)
        return self

    def offline_elements(self) -> int:
        """Offline-traffic accounting is not carried over the wire."""
        return 0

    def close(self) -> None:
        self._closed = True

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(shard={self.shard_id}, "
            f"pool={self.pool_level}/{self.pool_size}, "
            f"rounds={self.stats.rounds})"
        )


class ProcessPoolTransport(ShardTransport):
    """Shard sessions pinned in long-lived multiprocessing workers.

    ``num_workers`` defaults to one worker per shard (the layout the
    refactor exists for); fewer workers host multiple shards each, whose
    rounds then serialize on that worker's main thread — capacity is
    traded explicitly, never silently dropped.

    Two bandwidth knobs ride on top of the pipe protocol:

    * ``wire_format="packed"`` bit-packs update matrices and aggregates
      at their max's bit width (~2x smaller for 31-bit field elements
      stored as u64) — worth it even same-host, since pipe writes cost
      a kernel copy per byte;
    * ``payload_mode="shm"`` stages vector payloads in a coordinator-
      owned shared-memory segment (one region pair per shard) and frames
      only ``(name, offset)`` references, so element bytes never transit
      the pipe at all.  Regions are reused round over round — safe
      because at most one round per shard is in flight — and the
      segment is unlinked in :meth:`close` (with a ``__del__``
      backstop), so a worker dying mid-round cannot leak ``/dev/shm``
      entries.
    """

    kind = "process"

    def __init__(
        self,
        specs: Sequence[ShardSessionSpec],
        num_workers: Optional[int] = None,
        metrics=None,
        cohort_id: int = 0,
        shutdown_timeout_s: float = 10.0,
        mp_context: Optional[str] = None,
        wire_format: str = "raw",
        payload_mode: str = "pipe",
    ):
        if not specs:
            raise ProtocolError("transport needs at least one shard spec")
        if num_workers is not None and num_workers < 1:
            raise ProtocolError(
                f"need >= 1 worker process, got {num_workers}"
            )
        if wire_format not in WIRE_FORMATS:
            raise ProtocolError(
                f"unknown wire format {wire_format!r}; expected one of "
                f"{WIRE_FORMATS}"
            )
        if payload_mode not in ("pipe", "shm"):
            raise ProtocolError(
                f"unknown payload mode {payload_mode!r}; expected "
                f"'pipe' or 'shm'"
            )
        self.specs = list(specs)
        self.num_workers = min(num_workers or len(specs), len(specs))
        self.shutdown_timeout_s = float(shutdown_timeout_s)
        self.wire_format = wire_format
        self.payload_mode = payload_mode
        if payload_mode == "shm":
            # Report under a distinct metrics lane: the whole point of
            # the mode is a different wire_bytes profile.
            self.kind = "shm"
        self._metrics = metrics
        self._cohort_id = int(cohort_id)
        self._gf = FiniteField(self.specs[0].field_modulus)
        self._ids = itertools.count(1)
        self._id_lock = threading.Lock()
        self._round_ids = itertools.count(0)
        self._closed = False
        self._close_lock = threading.Lock()

        self._arena: Optional[SegmentArena] = None
        self._regions: List[Tuple[int, int]] = []  # (req_off, resp_off)
        self._registry: Optional[ShmRegistry] = None
        shm_resolver = None
        if payload_mode == "shm":
            offset = 0
            for spec in self.specs:
                req_nbytes = spec.num_users * spec.shard_dim * 8
                resp_nbytes = spec.shard_dim * 8
                self._regions.append((offset, offset + req_nbytes))
                offset += req_nbytes + resp_nbytes
            self._arena = SegmentArena(offset)
            self._registry = ShmRegistry()
            self._registry.add_local(self._arena)
            shm_resolver = self._registry.resolve

        ctx = multiprocessing.get_context(mp_context)
        self._clients: List[_WorkerClient] = []
        self._worker_of = [s % self.num_workers for s in range(len(specs))]
        for worker in range(self.num_workers):
            assigned = {
                shard: spec
                for shard, spec in enumerate(self.specs)
                if self._worker_of[shard] == worker
            }
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_worker_serve,
                args=(child_conn, assigned),
                name=f"shard-worker-{cohort_id}-{worker}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._clients.append(
                _WorkerClient(process, parent_conn, shm_resolver=shm_resolver)
            )
        self._handles = [
            ProcessShardHandle(self, shard, spec)
            for shard, spec in enumerate(self.specs)
        ]

    # -- plumbing --------------------------------------------------------
    def _next_id(self) -> int:
        with self._id_lock:
            return next(self._ids)

    def _client(self, shard_id: int) -> _WorkerClient:
        return self._clients[self._worker_of[shard_id]]

    def _request(self, shard_id: int, message) -> Tuple[int, int]:
        """Send one request; returns ``(request_id, frame_bytes)``."""
        if self._closed:
            raise ProtocolError("session is closed")
        request_id = self._next_id()
        nbytes = self._client(shard_id).send(message, request_id)
        return request_id, nbytes

    def _await(self, shard_id: int, request_id: int,
               timeout: Optional[float] = None):
        return self._client(shard_id).receive(request_id, timeout=timeout)

    # -- ShardTransport surface ------------------------------------------
    @property
    def shard_handles(self) -> Sequence[ProcessShardHandle]:
        return self._handles

    @property
    def gf(self) -> FiniteField:
        return self._gf

    @property
    def workers_alive(self) -> int:
        return sum(1 for c in self._clients if c.process.is_alive())

    def run_all(self, per_shard_updates, dropouts, rng=None, **phase_kwargs):
        """Scatter one round request per shard, then gather every result.

        The caller's ``rng`` cannot cross a process boundary and is
        ignored; online rounds of pooled sessions draw nothing from it,
        and replay sessions use their worker-local spec-seeded stream.
        Every response is drained even when a shard fails, so one bad
        round (e.g. survivors below ``U``) leaves all pipes request-free
        and the transport usable for the next round.
        """
        if self._closed:
            raise ProtocolError("session is closed")
        if len(per_shard_updates) != len(self.specs):
            raise ProtocolError(
                f"expected {len(self.specs)} shard update dicts, got "
                f"{len(per_shard_updates)}"
            )
        offline_dropouts = phase_kwargs.pop("offline_dropouts", None)
        if phase_kwargs:
            raise TransportError(
                "the process transport cannot forward phase kwargs "
                f"{sorted(phase_kwargs)} over the wire"
            )
        t0 = time.perf_counter()
        round_id = next(self._round_ids)
        trace = current_trace()
        pending = []
        bytes_sent = 0
        shm_bytes = 0
        with span("shard_scatter", transport=self.kind):
            for shard_id, updates in enumerate(per_shard_updates):
                if self.payload_mode == "shm":
                    request, staged = self._stage_shm_request(
                        shard_id, round_id, updates, dropouts,
                        offline_dropouts,
                    )
                    shm_bytes += staged
                else:
                    request = ShardRoundRequest.from_updates(
                        shard_id, round_id, updates, dropouts,
                        offline_dropouts,
                        packed=self.wire_format == "packed",
                    )
                if trace is not None:
                    request.trace_id = trace.trace_id
                request_id, nbytes = self._request(shard_id, request)
                bytes_sent += nbytes
                pending.append((shard_id, request_id))

        results: List[Optional[AggregationResult]] = []
        error: Optional[ErrorFrame] = None
        stalled_shards = 0
        bytes_received = 0
        with span("shard_gather", transport=self.kind):
            for shard_id, request_id in pending:
                message, nbytes = self._await(shard_id, request_id)
                bytes_received += nbytes
                if isinstance(message, ErrorFrame):
                    error = error if error is not None else message
                    results.append(None)
                    continue
                handle = self._handles[shard_id]
                handle._absorb(message.pool_level, message.stats)
                stalled_shards += int(message.stalled)
                _absorb_worker_span(
                    trace, shard_id, message.worker_span, self.kind
                )
                result = message.to_result()
                if message.aggregate_ref is not None:
                    # The aggregate aliases this shard's response region,
                    # which the next round will overwrite — detach it.
                    shm_bytes += result.aggregate.nbytes
                    result.aggregate = np.array(result.aggregate)
                results.append(result)
        if self._metrics is not None:
            # Per-request accounting: only this round's own frames count,
            # not concurrent background-refill traffic on the same pipes.
            self._metrics.record_transport_round(
                self.kind,
                time.perf_counter() - t0,
                bytes_sent=bytes_sent,
                bytes_received=bytes_received,
                stalled_shards=stalled_shards,
                shm_bytes=shm_bytes,
            )
        if error is not None:
            error.raise_()
        return results

    def _stage_shm_request(
        self, shard_id, round_id, updates, dropouts, offline_dropouts
    ) -> Tuple[ShardRoundRequest, int]:
        """Write one shard's update matrix into its arena region and
        build the reference-carrying request; returns staged bytes."""
        assert self._arena is not None
        req_off, resp_off = self._regions[shard_id]
        width = self.specs[shard_id].shard_dim
        user_ids = sorted(updates)
        shape = (len(user_ids), width) if user_ids else (0, 0)
        matrix = self._arena.ndarray(req_off, shape)
        for i, uid in enumerate(user_ids):
            matrix[i] = updates[uid]
        request = ShardRoundRequest(
            shard_id=shard_id,
            round_id=round_id,
            user_ids=user_ids,
            updates=matrix,
            dropouts=set(dropouts),
            offline_dropouts=set(offline_dropouts or set()),
            updates_ref=ShmArrayRef(
                name=self._arena.name, offset=req_off, shape=shape
            ),
            result_ref=ShmArrayRef(
                name=self._arena.name, offset=resp_off, shape=(width,)
            ),
        )
        return request, matrix.nbytes

    def drain_all(self, weights, per_shard_updates, recovery_dropouts):
        """Scatter one drain request per shard, then gather every result.

        Drain payloads always ride the pipe (even in shm mode): a drain
        matrix is ``(B, width)`` with ``B <= N`` rows of *buffered*
        deliveries, and the shm arena's request regions are sized for
        the fixed member count at construction — re-keying can grow the
        buffer past them, so the pipe lane is the one that stays correct
        across membership churn.
        """
        if self._closed:
            raise ProtocolError("session is closed")
        if len(per_shard_updates) != len(self.specs):
            raise ProtocolError(
                f"expected {len(self.specs)} shard update slices, got "
                f"{len(per_shard_updates)}"
            )
        t0 = time.perf_counter()
        drain_id = next(self._round_ids)
        trace = current_trace()
        pending = []
        bytes_sent = 0
        with span("shard_scatter", transport=self.kind):
            for shard_id, updates in enumerate(per_shard_updates):
                request = ShardDrainRequest(
                    shard_id=shard_id,
                    drain_id=drain_id,
                    weights=np.asarray(weights, dtype=np.uint64),
                    updates=updates,
                    recovery_dropouts=set(recovery_dropouts),
                    packed=self.wire_format == "packed",
                )
                if trace is not None:
                    request.trace_id = trace.trace_id
                request_id, nbytes = self._request(shard_id, request)
                bytes_sent += nbytes
                pending.append((shard_id, request_id))

        results: List[Optional[AggregationResult]] = []
        error: Optional[ErrorFrame] = None
        stalled_shards = 0
        bytes_received = 0
        with span("shard_gather", transport=self.kind):
            for shard_id, request_id in pending:
                message, nbytes = self._await(shard_id, request_id)
                bytes_received += nbytes
                if isinstance(message, ErrorFrame):
                    error = error if error is not None else message
                    results.append(None)
                    continue
                handle = self._handles[shard_id]
                handle._absorb(message.pool_level, message.stats)
                stalled_shards += int(message.stalled)
                _absorb_worker_span(
                    trace, shard_id, message.worker_span, self.kind
                )
                results.append(message.to_result())
        if self._metrics is not None:
            self._metrics.record_transport_round(
                self.kind,
                time.perf_counter() - t0,
                bytes_sent=bytes_sent,
                bytes_received=bytes_received,
                stalled_shards=stalled_shards,
            )
        if error is not None:
            error.raise_()
        return results

    def rekey_all(self, num_users: int) -> int:
        """Re-key every shard's worker session, then refresh the local
        specs so a later worker restart rebuilds the *new* geometry."""
        if self._closed:
            raise ProtocolError("session is closed")
        pending = [
            (shard_id, self._request(
                shard_id, RekeyRequest(shard_id, num_users)
            )[0])
            for shard_id in range(len(self.specs))
        ]
        invalidated = 0
        error: Optional[ErrorFrame] = None
        for shard_id, request_id in pending:
            message, _ = self._await(shard_id, request_id)
            if isinstance(message, ErrorFrame):
                error = error if error is not None else message
                continue
            invalidated += max(0, -int(message.rounds_added))
            new_spec = replace(self.specs[shard_id], num_users=num_users)
            self.specs[shard_id] = new_spec
            handle = self._handles[shard_id]
            handle.spec = new_spec
            handle._absorb(message.pool_level, message.stats, message.closed)
        if error is not None:
            error.raise_()
        return invalidated

    def refill_all(self, rounds: Optional[int] = None) -> int:
        """Scatter refills to every shard, then join — encodes overlap.

        Every ticket is joined even when one fails, so no response is
        left orphaned in a client's buffer and every handle's pool cache
        is refreshed; the first error re-raises after the drain.
        """
        tickets = [
            (handle, handle.refill_begin(rounds))
            for handle in self._handles
        ]
        added_max = 0
        first_error: Optional[BaseException] = None
        for handle, ticket in tickets:
            try:
                added_max = max(added_max, handle.refill_join(ticket))
            except (ProtocolError, TransportError) as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return added_max

    def close(self) -> None:
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        acks = []
        for client in self._clients:
            try:
                request_id = self._next_id()
                client.send(Shutdown(), request_id)
                acks.append((client, request_id))
            except TransportError:
                acks.append((client, None))
        for client, request_id in acks:
            if request_id is not None:
                try:
                    client.receive(request_id, timeout=self.shutdown_timeout_s)
                except TransportError:
                    pass  # fall through to join/terminate
            client.process.join(timeout=self.shutdown_timeout_s)
            if client.process.is_alive():
                client.process.terminate()
                client.process.join(timeout=self.shutdown_timeout_s)
            # Worker exit delivered EOF to the receiver thread; reap it
            # before closing our connection end.
            client.join_receiver(timeout=self.shutdown_timeout_s)
            client.conn.close()
        for handle in self._handles:
            handle.close()
        # Segment teardown strictly after worker teardown: the workers
        # hold attachments, and unlinking first would turn a late round
        # into a crash instead of a clean shutdown error.
        if self._registry is not None:
            self._registry.close()
        if self._arena is not None:
            self._arena.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __del__(self):  # best-effort; daemon workers die with the parent
        try:
            self.close()
        except Exception:
            pass


def build_transport(
    kind: str,
    specs: Sequence[ShardSessionSpec],
    gf: Optional[FiniteField] = None,
    num_workers: Optional[int] = None,
    metrics=None,
    cohort_id: int = 0,
    connect: Optional[Sequence[str]] = None,
    wire_format: str = "raw",
    tracing: bool = True,
) -> ShardTransport:
    """Construct the configured transport backend from shard specs.

    ``connect`` lists ``host:port`` worker addresses for the ``socket``
    backend (shards round-robin across them); the other backends reject
    it, like ``num_workers`` outside ``process``/``shm``.
    ``wire_format="packed"`` bit-packs vector payloads where the peer
    supports it (``inline`` has no wire and ignores it; ``shm`` passes
    vectors by reference, which supersedes packing).  ``tracing=False``
    keeps the socket backend from even *requesting* CAP_ROUND_TRACING,
    so its frames stay byte-identical to the pre-tracing format; the
    local backends need no flag (they only propagate a trace_id when a
    trace is active on the calling thread).
    """
    if kind == "inline":
        return InlineTransport.from_specs(
            specs, gf=gf, metrics=metrics, cohort_id=cohort_id
        )
    if kind == "process":
        return ProcessPoolTransport(
            specs, num_workers=num_workers, metrics=metrics,
            cohort_id=cohort_id, wire_format=wire_format,
        )
    if kind == "shm":
        return ProcessPoolTransport(
            specs, num_workers=num_workers, metrics=metrics,
            cohort_id=cohort_id, wire_format=wire_format,
            payload_mode="shm",
        )
    if kind == "socket":
        # Local import: the socket backend pulls in this module's spec
        # and handle types, so a top-level import would be a cycle.
        from repro.service.socket_transport import SocketTransport

        return SocketTransport(
            specs, connect=connect or (), metrics=metrics,
            cohort_id=cohort_id, wire_format=wire_format, tracing=tracing,
        )
    raise ProtocolError(
        f"unknown transport {kind!r}; expected one of {TRANSPORT_KINDS}"
    )
