"""Networked shard execution: the ``socket`` transport backend.

:class:`SocketTransport` drives the same scatter/gather the process
backend drives, but the shard sessions live behind TCP connections to
one or more ``repro shard-worker`` hosts (see
:mod:`repro.service.socket_worker`), speaking :mod:`repro.wire` frames
reassembled from the byte stream.  Because both backends build sessions
from the same :class:`~repro.service.transport.ShardSessionSpec` seed
paths, socket-backed rounds over localhost are bit-identical to inline
rounds — the acceptance bar the tests pin.

What remoteness adds over the process backend:

* **Connection supervision.**  Each connection runs a heartbeat thread
  (:class:`~repro.wire.Ping` every ``heartbeat_interval_s``, answered
  off the worker's round path); a missed heartbeat or any socket error
  marks the connection *broken*, waking every thread blocked on a
  response with :class:`~repro.exceptions.TransportError` — a lost
  shard mid-round surfaces as a typed error, never a hang.
* **Reconnect with re-pin.**  The client remembers the
  ``SessionSetup`` entries it pinned; the next request after a broken
  connection reconnects and replays them, so a killed-and-restarted
  worker rebuilds identical sessions from the specs and the service
  completes subsequent rounds.  Requests that were in flight across the
  break fail with a stale-generation error rather than waiting for a
  response that died with the old connection.
* **Connection sharing.**  Clients are pooled per address within the
  process, so many cohorts' transports batch their shards over one
  connection per worker host (each cohort holding its own slot ids);
  teardown releases one cohort's slots without touching its
  neighbours'.

Wire accounting is per request, so each transport's metrics reflect its
own traffic even on a shared connection.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ProtocolError, TransportError, WireError
from repro.field.arithmetic import FiniteField
from repro.obs import current_trace, span
from repro.protocols.base import SessionStats
from repro.service.socket_worker import parse_address
from repro.service.transport import (
    ProcessShardHandle,
    ShardSessionSpec,
    ShardTransport,
    _absorb_worker_span,
)
from repro.wire import (
    CAP_BUFFERED_DRAINS,
    CAP_PACKED_ARRAYS,
    CAP_ROUND_TRACING,
    ErrorFrame,
    FrameAssembler,
    Ping,
    RekeyRequest,
    SessionSetup,
    SessionTeardown,
    SetupAck,
    ShardDrainRequest,
    ShardRoundRequest,
    Shutdown,
    decode_message,
    encode_segments,
    recv_frames,
    send_segments,
)


class SocketShardHandle(ProcessShardHandle):
    """Session-surface proxy for one shard pinned behind a socket."""


class _SocketClient:
    """One supervised connection to a worker host, shared by transports.

    Response multiplexing matches the process backend's ``_WorkerClient``
    (a draining receiver thread routes frames by request id), with two
    networked additions: a *generation* counter that invalidates requests
    stranded by a reconnect, and the heartbeat/re-pin machinery described
    in the module docstring.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        heartbeat_interval_s: float = 2.0,
        heartbeat_timeout_s: float = 10.0,
        connect_timeout_s: float = 10.0,
        setup_timeout_s: float = 60.0,
    ):
        self.address = address
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.connect_timeout_s = float(connect_timeout_s)
        self.setup_timeout_s = float(setup_timeout_s)
        self.refs = 0  # guarded by the pool's registry lock
        self._ids = itertools.count(1)
        self._slots = itertools.count(0)
        self._cv = threading.Condition()
        self._responses: Dict[int, Tuple[object, int]] = {}
        self._inflight: Dict[int, int] = {}  # request id -> generation
        self._abandoned: set = set()  # ids whose response should be dropped
        self._broken: Optional[BaseException] = None
        self._generation = 0
        self._closed = False
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._reconnect_lock = threading.Lock()
        self._slot_specs: Dict[int, ShardSessionSpec] = {}
        # Wire-format negotiation state: ``requested_caps`` is the OR of
        # every sharing transport's asks (replayed on re-pin);
        # ``negotiated_caps`` is what the *current* connection's worker
        # acknowledged.  Both guarded by ``_cv``.
        self.requested_caps = 0
        self.negotiated_caps = 0
        self._repin_listeners: List = []
        self._reconnect_sinks: List[Tuple[object, str]] = []
        self._stop_heartbeat = threading.Event()
        self._sock = self._open_socket()
        self._start_receiver()
        self._heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            name=f"socket-client-hb-{address[0]}:{address[1]}",
            daemon=True,
        )
        self._heartbeat.start()

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    def _open_socket(self) -> socket.socket:
        try:
            sock = socket.create_connection(
                self.address, timeout=self.connect_timeout_s
            )
        except OSError as exc:
            raise TransportError(
                f"cannot connect to shard worker at "
                f"{self.address[0]}:{self.address[1]}: {exc}"
            ) from exc
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _start_receiver(self) -> None:
        thread = threading.Thread(
            target=self._recv_loop,
            args=(self._sock, self._generation),
            name=f"socket-client-recv-{self.address[0]}:{self.address[1]}",
            daemon=True,
        )
        thread.start()

    def _recv_loop(self, sock: socket.socket, generation: int) -> None:
        assembler = FrameAssembler()
        while True:
            try:
                # decode inside the same guard as the read: a frame that
                # passes framing but fails message decode must poison the
                # connection (waiters fail fast), not kill this thread
                # silently and strand them.
                decoded = [
                    (decode_message(frame), len(frame))
                    for frame in recv_frames(sock, assembler)
                ]
            except (EOFError, OSError, WireError) as exc:
                self._mark_broken(exc, generation)
                return
            with self._cv:
                if self._generation != generation:
                    return  # a reconnect superseded this socket
                for (request_id, message), nbytes in decoded:
                    if request_id in self._abandoned:
                        # Nobody will ever collect this (its waiter timed
                        # out or its round aborted); storing it would
                        # leak the frame until the next reconnect.
                        self._abandoned.discard(request_id)
                        continue
                    self._responses[request_id] = (message, nbytes)
                self._cv.notify_all()

    def _mark_broken(self, exc: BaseException, generation: int) -> None:
        with self._cv:
            if self._generation != generation or self._broken is not None:
                return
            self._broken = exc
            sock, self._sock = self._sock, None
            self._cv.notify_all()
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    @property
    def alive(self) -> bool:
        with self._cv:
            return self._broken is None and not self._closed

    def ensure_connected(self) -> None:
        """Reconnect and re-pin every hosted slot if the link is broken."""
        with self._reconnect_lock:
            with self._cv:
                if self._closed:
                    raise TransportError("socket client is closed")
                if self._broken is None:
                    return
                entries = sorted(self._slot_specs.items())
                requested = self.requested_caps
            sock = self._open_socket()  # raises TransportError on failure
            with self._cv:
                self._generation += 1
                self._broken = None
                self._sock = sock
                self._responses.clear()
                self._abandoned.clear()  # old-generation frames can't arrive
                self.negotiated_caps = 0  # fresh connection, renegotiate
            self._start_receiver()
            if entries:
                try:
                    request_id = self.next_id()
                    self.send(
                        SessionSetup(entries, capabilities=requested),
                        request_id,
                    )
                    ack, _ = self.receive(
                        request_id, timeout=self.setup_timeout_s
                    )
                    if isinstance(ack, ErrorFrame):
                        ack.raise_()
                    if not isinstance(ack, SetupAck):
                        raise TransportError(
                            f"re-pin answered with {type(ack).__name__}"
                        )
                    with self._cv:
                        self.negotiated_caps = ack.capabilities
                except Exception as exc:
                    # A half-pinned connection must not look healthy: no
                    # session is guaranteed to exist behind any slot, so
                    # poison it and let the next request retry the whole
                    # reconnect + re-pin from scratch.
                    with self._cv:
                        generation = self._generation
                    self._mark_broken(
                        TransportError(f"session re-pin failed: {exc}"),
                        generation,
                    )
                    raise
            with self._cv:
                listeners = list(self._repin_listeners)
                sinks = list(self._reconnect_sinks)
        for listener in listeners:
            listener()
        # One physical reconnect = one metric event per distinct sink,
        # however many transports share this connection.
        seen = set()
        for metrics, kind in sinks:
            if id(metrics) not in seen:
                seen.add(id(metrics))
                metrics.record_transport_reconnect(kind)

    def close(self) -> None:
        """Shutdown handshake (best-effort) and release the socket.

        Only the pool calls this, at refcount zero, so no other thread
        is mid-request; the handshake runs *before* ``_closed`` flips so
        send/receive still work for it.
        """
        with self._cv:
            if self._closed:
                return
            broken = self._broken is not None
        self._stop_heartbeat.set()
        if not broken:
            try:
                request_id = self.next_id()
                self.send(Shutdown(), request_id)
                self.receive(request_id, timeout=self.heartbeat_timeout_s)
            except TransportError:
                pass
        with self._cv:
            self._closed = True
            sock, self._sock = self._sock, None
            self._generation += 1  # detach any receiver still attached
            self._cv.notify_all()
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def next_id(self) -> int:
        with self._cv:
            return next(self._ids)

    def allocate_slots(self, count: int) -> List[int]:
        with self._cv:
            return [next(self._slots) for _ in range(count)]

    def request_capability(self, cap: int) -> None:
        """Ask for ``cap`` on every (re)pin from now on."""
        with self._cv:
            self.requested_caps |= int(cap)

    def supports(self, cap: int) -> bool:
        """True iff the current connection's worker acknowledged ``cap``."""
        with self._cv:
            return bool(self.negotiated_caps & cap)

    def send(self, message, request_id: int) -> int:
        segments = encode_segments(message, request_id)
        nbytes = sum(len(s) for s in segments)
        with self._cv:
            if self._closed:
                raise TransportError("socket client is closed")
            sock = self._sock
            generation = self._generation
            if self._broken is not None or sock is None:
                raise TransportError(
                    f"connection to {self.address[0]}:{self.address[1]} is "
                    f"broken: {self._broken!r}"
                )
            self._inflight[request_id] = generation
        try:
            with self._send_lock:
                send_segments(sock, segments)
        except OSError as exc:
            self._mark_broken(exc, generation)
            raise TransportError(
                f"failed to send {type(message).__name__} to "
                f"{self.address[0]}:{self.address[1]}: {exc}"
            ) from exc
        return nbytes

    def receive(self, request_id: int, timeout: Optional[float] = None):
        """Block for one response; returns ``(message, frame_bytes)``."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while True:
                if request_id in self._responses:
                    self._inflight.pop(request_id, None)
                    return self._responses.pop(request_id)
                if self._broken is not None:
                    self._inflight.pop(request_id, None)  # nobody retries it
                    raise TransportError(
                        f"connection to {self.address[0]}:{self.address[1]} "
                        f"broken with response {request_id} outstanding: "
                        f"{self._broken!r}"
                    )
                stamped = self._inflight.get(request_id)
                if stamped is not None and stamped != self._generation:
                    self._inflight.pop(request_id, None)
                    raise TransportError(
                        f"response {request_id} was lost to a reconnect; "
                        f"the request must be retried on the new session"
                    )
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._abandon_locked(request_id)
                        raise TransportError(
                            f"timed out awaiting response {request_id} from "
                            f"{self.address[0]}:{self.address[1]}"
                        )
                self._cv.wait(remaining)

    def _abandon_locked(self, request_id: int) -> None:
        """Drop all bookkeeping for a request nobody will collect."""
        self._inflight.pop(request_id, None)
        if self._responses.pop(request_id, None) is None:
            self._abandoned.add(request_id)

    def abandon(self, request_id: int) -> None:
        """Public form of :meth:`_abandon_locked` for aborted scatters."""
        with self._cv:
            self._abandon_locked(request_id)

    def request(self, message, timeout: Optional[float] = None):
        """Convenience: send + receive one frame, raising remote errors."""
        request_id = self.next_id()
        self.send(message, request_id)
        response, _ = self.receive(request_id, timeout=timeout)
        if isinstance(response, ErrorFrame):
            response.raise_()
        return response

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        nonce = 0
        while not self._stop_heartbeat.wait(self.heartbeat_interval_s):
            with self._cv:
                if self._closed:
                    return
                if self._broken is not None:
                    continue  # lazily reconnected by the next request
            nonce += 1
            stamped = None
            try:
                request_id = self.next_id()
                self.send(Ping(nonce=nonce), request_id)
                with self._cv:
                    stamped = self._inflight.get(request_id, self._generation)
                self.receive(request_id, timeout=self.heartbeat_timeout_s)
            except TransportError:
                # A timed-out heartbeat is a dead link even though the
                # OS hasn't said so; poison the socket so every waiter
                # fails fast instead of blocking on a black hole.  The
                # generation stamped at send time scopes the poisoning
                # to the connection the ping actually rode: if a
                # reconnect already superseded it (this receive failed
                # with the stale-generation error), _mark_broken is a
                # no-op and the healthy new connection is left alone.
                if stamped is not None:
                    self._mark_broken(
                        TransportError("heartbeat timed out"), stamped
                    )

    def add_repin_listener(self, listener) -> None:
        with self._cv:
            self._repin_listeners.append(listener)

    def remove_repin_listener(self, listener) -> None:
        with self._cv:
            if listener in self._repin_listeners:
                self._repin_listeners.remove(listener)

    def add_reconnect_sink(self, metrics, kind: str) -> None:
        """Count physical reconnects into ``metrics`` (deduped by sink)."""
        with self._cv:
            self._reconnect_sinks.append((metrics, kind))

    def remove_reconnect_sink(self, metrics, kind: str) -> None:
        with self._cv:
            if (metrics, kind) in self._reconnect_sinks:
                self._reconnect_sinks.remove((metrics, kind))


class _ClientPool:
    """Process-wide registry sharing one client per worker address."""

    def __init__(self):
        self._lock = threading.Lock()
        self._clients: Dict[Tuple[str, int], _SocketClient] = {}

    def acquire(self, address: Tuple[str, int], **kwargs) -> _SocketClient:
        # A pooled client is never closed while referenced (release() only
        # closes at refcount zero, removing it here first), so any hit is
        # usable: a *broken* one is revived by ensure_connected on the
        # next request rather than replaced, preserving the sharing.
        with self._lock:
            client = self._clients.get(address)
            if client is not None:
                client.refs += 1
                return client
        # Connect OUTSIDE the registry lock: a 10s connect timeout to a
        # dead address must not freeze every other transport's
        # acquire/release in the process.
        candidate = _SocketClient(address, **kwargs)
        with self._lock:
            client = self._clients.get(address)
            if client is None:
                candidate.refs = 1
                self._clients[address] = candidate
                return candidate
            client.refs += 1
        candidate.close()  # another thread won the connect race
        return client

    def release(self, client: _SocketClient) -> None:
        with self._lock:
            client.refs -= 1
            if client.refs > 0:
                return
            if self._clients.get(client.address) is client:
                del self._clients[client.address]
        client.close()


_POOL = _ClientPool()


class SocketTransport(ShardTransport):
    """Shard sessions pinned behind TCP connections to worker hosts.

    ``connect`` lists worker addresses (``host:port``); shards are
    assigned round-robin across them, and all shards sharing an address
    share one supervised connection (also with other cohorts' transports
    in this process, unless ``share_connections=False``).
    """

    kind = "socket"

    def __init__(
        self,
        specs: Sequence[ShardSessionSpec],
        connect: Sequence[str],
        metrics=None,
        cohort_id: int = 0,
        heartbeat_interval_s: float = 2.0,
        heartbeat_timeout_s: float = 10.0,
        request_timeout_s: Optional[float] = None,
        setup_timeout_s: float = 60.0,
        share_connections: bool = True,
        wire_format: str = "raw",
        tracing: bool = True,
    ):
        if not specs:
            raise ProtocolError("transport needs at least one shard spec")
        if not connect:
            raise ProtocolError(
                "the socket transport needs at least one worker address "
                "(connect=['host:port', ...])"
            )
        if wire_format not in ("raw", "packed"):
            raise ProtocolError(
                f"unknown wire format {wire_format!r}; expected 'raw' or "
                f"'packed'"
            )
        self.wire_format = wire_format
        self.tracing = bool(tracing)
        self.specs = list(specs)
        self.addresses = [parse_address(a) for a in connect]
        self.request_timeout_s = request_timeout_s
        self._metrics = metrics
        self._cohort_id = int(cohort_id)
        self._gf = FiniteField(self.specs[0].field_modulus)
        self._round_ids = itertools.count(0)
        self._closed = False
        self._close_lock = threading.Lock()
        self._shared = bool(share_connections)

        client_kwargs = dict(
            heartbeat_interval_s=heartbeat_interval_s,
            heartbeat_timeout_s=heartbeat_timeout_s,
            setup_timeout_s=setup_timeout_s,
        )
        # Every container exists before any client is acquired, so the
        # except-path _release_clients can always run — a dead address
        # in the middle of `connect` must release (not leak) the
        # refcounts of clients already acquired.
        self._client_of: List[_SocketClient] = []
        self._clients: List[_SocketClient] = []  # distinct, acquire-counted
        self._slot_of: List[Optional[int]] = [None] * len(self.specs)
        self._listeners: List[Tuple[_SocketClient, object]] = []
        try:
            for shard in range(len(self.specs)):
                address = self.addresses[shard % len(self.addresses)]
                client = next(
                    (c for c in self._clients if c.address == address), None
                )
                if client is None:
                    if self._shared:
                        client = _POOL.acquire(address, **client_kwargs)
                    else:
                        client = _SocketClient(address, **client_kwargs)
                        client.refs = 1
                    self._clients.append(client)
                self._client_of.append(client)

            # Pin this transport's shards: one SessionSetup per
            # connection, batching every shard that rides it (other
            # cohorts' transports add their own slots to the same
            # connections independently).
            for client in self._clients:
                shards = [
                    s for s in range(len(self.specs))
                    if self._client_of[s] is client
                ]
                slots = client.allocate_slots(len(shards))
                entries = []
                for shard, slot in zip(shards, slots):
                    self._slot_of[shard] = slot
                    entries.append((slot, self.specs[shard]))
                # Register the slots for re-pin BEFORE the setup round
                # trip: a connection break landing between the ack and a
                # later registration would replay a SessionSetup missing
                # these slots, stranding them forever on a connection
                # that then looks healthy.  (On failure, _release_clients
                # removes them again.)
                with client._cv:
                    client._slot_specs.update(entries)
                if self.wire_format == "packed":
                    client.request_capability(CAP_PACKED_ARRAYS)
                if self.tracing:
                    client.request_capability(CAP_ROUND_TRACING)
                if any(
                    self.specs[s].supports_drains for s in shards
                ):
                    client.request_capability(CAP_BUFFERED_DRAINS)
                client.ensure_connected()  # a pooled client may be broken
                with client._cv:
                    requested = client.requested_caps
                ack = client.request(
                    SessionSetup(entries, capabilities=requested),
                    timeout=setup_timeout_s,
                )
                if not isinstance(ack, SetupAck) or set(ack.slots) != set(
                    slots
                ):
                    raise TransportError(
                        f"worker at {client.address} acknowledged slots "
                        f"{getattr(ack, 'slots', ack)}, expected {slots}"
                    )
                with client._cv:
                    client.negotiated_caps = ack.capabilities
                listener = self._make_repin_listener(client)
                client.add_repin_listener(listener)
                self._listeners.append((client, listener))
                if self._metrics is not None:
                    client.add_reconnect_sink(self._metrics, self.kind)
        except BaseException:
            self._release_clients()
            raise

        self._handles = [
            SocketShardHandle(self, shard, spec)
            for shard, spec in enumerate(self.specs)
        ]

    def _make_repin_listener(self, client: _SocketClient):
        def _on_repin() -> None:
            # The worker rebuilt this connection's sessions from their
            # specs: fresh pools, fresh counters.  Reset the local caches
            # to match.  (The reconnect itself is counted once per
            # physical connection by the client's reconnect sinks.)
            for shard, owner in enumerate(self._client_of):
                if owner is client and hasattr(self, "_handles"):
                    self._handles[shard]._absorb(0, SessionStats(), closed=False)

        return _on_repin

    # ------------------------------------------------------------------
    # plumbing (the handle surface calls these)
    # ------------------------------------------------------------------
    def _request(self, shard_id: int, message) -> Tuple[int, int]:
        if self._closed:
            raise ProtocolError("session is closed")
        client = self._client_of[shard_id]
        # Route by slot: the wire's shard_id field addresses the slot the
        # worker pinned this shard's session at (connection-unique, so
        # several cohorts can share the connection).
        message.shard_id = self._slot_of[shard_id]
        client.ensure_connected()
        # Packed encoding is only legal on a connection whose worker
        # acknowledged it — checked at send time (after ensure_connected)
        # because a reconnect may have landed this round on an older
        # worker since the request was staged.
        if getattr(message, "packed", False) and not client.supports(
            CAP_PACKED_ARRAYS
        ):
            message.packed = False
        # Same downgrade for tracing: a worker that never acked
        # CAP_ROUND_TRACING gets the pre-tracing frame (trace_id omitted
        # when zero), completes the round normally, and simply reports no
        # worker-side span — mixed versions interoperate.
        if getattr(message, "trace_id", 0) and not client.supports(
            CAP_ROUND_TRACING
        ):
            message.trace_id = 0
        request_id = client.next_id()
        nbytes = client.send(message, request_id)
        return request_id, nbytes

    def _await(self, shard_id: int, request_id: int,
               timeout: Optional[float] = None):
        return self._client_of[shard_id].receive(
            request_id,
            timeout=self.request_timeout_s if timeout is None else timeout,
        )

    # ------------------------------------------------------------------
    # ShardTransport surface
    # ------------------------------------------------------------------
    @property
    def shard_handles(self) -> Sequence[SocketShardHandle]:
        return self._handles

    @property
    def gf(self) -> FiniteField:
        return self._gf

    @property
    def num_workers(self) -> int:
        return len(self._clients)

    @property
    def workers_alive(self) -> int:
        return sum(1 for client in self._clients if client.alive)

    def run_all(self, per_shard_updates, dropouts, rng=None, **phase_kwargs):
        """Scatter one round request per shard, then gather every result.

        Mirrors the process backend (``rng`` cannot cross the wire and is
        ignored; every response is drained so the connections stay
        request-free after a failed round), and additionally survives a
        *lost* shard: a connection that breaks mid-round fails that
        shard's gather with :class:`TransportError`, the remaining
        shards' responses are still collected, and the first error is
        raised once the drain completes.
        """
        if self._closed:
            raise ProtocolError("session is closed")
        if len(per_shard_updates) != len(self.specs):
            raise ProtocolError(
                f"expected {len(self.specs)} shard update dicts, got "
                f"{len(per_shard_updates)}"
            )
        offline_dropouts = phase_kwargs.pop("offline_dropouts", None)
        if phase_kwargs:
            raise TransportError(
                "the socket transport cannot forward phase kwargs "
                f"{sorted(phase_kwargs)} over the wire"
            )
        t0 = time.perf_counter()
        round_id = next(self._round_ids)
        trace = current_trace() if self.tracing else None
        pending: List[Tuple[int, int]] = []
        bytes_sent = 0
        try:
            with span("shard_scatter", transport=self.kind):
                for shard_id, updates in enumerate(per_shard_updates):
                    request = ShardRoundRequest.from_updates(
                        self._slot_of[shard_id], round_id, updates, dropouts,
                        offline_dropouts,
                        packed=self.wire_format == "packed",
                    )
                    if trace is not None:
                        request.trace_id = trace.trace_id
                    request_id, nbytes = self._request(shard_id, request)
                    bytes_sent += nbytes
                    pending.append((shard_id, request_id))
        except BaseException:
            # An aborted scatter (one connection down) must not strand
            # the requests already sent to healthy workers: abandon them
            # so their responses are dropped on arrival, not leaked.
            for shard_id, request_id in pending:
                self._client_of[shard_id].abandon(request_id)
            raise

        results = []
        first_error: Optional[BaseException] = None
        error_frame: Optional[ErrorFrame] = None
        stalled_shards = 0
        bytes_received = 0
        with span("shard_gather", transport=self.kind):
            for shard_id, request_id in pending:
                try:
                    message, nbytes = self._await(shard_id, request_id)
                except TransportError as exc:
                    if first_error is None:
                        first_error = exc
                    results.append(None)
                    continue
                bytes_received += nbytes
                if isinstance(message, ErrorFrame):
                    if error_frame is None:
                        error_frame = message
                    results.append(None)
                    continue
                handle = self._handles[shard_id]
                handle._absorb(message.pool_level, message.stats)
                stalled_shards += int(message.stalled)
                _absorb_worker_span(
                    trace, shard_id, message.worker_span, self.kind
                )
                results.append(message.to_result())
        if self._metrics is not None:
            self._metrics.record_transport_round(
                self.kind,
                time.perf_counter() - t0,
                bytes_sent=bytes_sent,
                bytes_received=bytes_received,
                stalled_shards=stalled_shards,
            )
        # Library errors (a shard's DropoutError crossing the wire) take
        # precedence; a torn connection surfaces as TransportError.
        if error_frame is not None:
            error_frame.raise_()
        if first_error is not None:
            raise first_error
        return results

    def drain_all(self, weights, per_shard_updates, recovery_dropouts):
        """Scatter one buffered drain per shard, then gather every result.

        Error handling matches :meth:`run_all`: an aborted scatter
        abandons already-sent requests, a torn connection fails that
        shard's gather without stranding the others, and library errors
        crossing the wire take precedence over transport errors.
        """
        if self._closed:
            raise ProtocolError("session is closed")
        if len(per_shard_updates) != len(self.specs):
            raise ProtocolError(
                f"expected {len(self.specs)} shard update slices, got "
                f"{len(per_shard_updates)}"
            )
        t0 = time.perf_counter()
        drain_id = next(self._round_ids)
        trace = current_trace() if self.tracing else None
        weights = np.asarray(weights, dtype=np.uint64)
        pending: List[Tuple[int, int]] = []
        bytes_sent = 0
        try:
            with span("shard_scatter", transport=self.kind):
                for shard_id, updates in enumerate(per_shard_updates):
                    client = self._client_of[shard_id]
                    client.ensure_connected()
                    if not client.supports(CAP_BUFFERED_DRAINS):
                        # Unlike packed/tracing there is no raw fallback
                        # frame an old worker could serve, so fail loud.
                        raise TransportError(
                            f"worker at {client.address[0]}:"
                            f"{client.address[1]} does not support "
                            "buffered drains (CAP_BUFFERED_DRAINS not "
                            "acknowledged)"
                        )
                    request = ShardDrainRequest(
                        shard_id=self._slot_of[shard_id],
                        drain_id=drain_id,
                        weights=weights,
                        updates=updates,
                        recovery_dropouts=set(recovery_dropouts),
                        packed=self.wire_format == "packed",
                    )
                    if trace is not None:
                        request.trace_id = trace.trace_id
                    request_id, nbytes = self._request(shard_id, request)
                    bytes_sent += nbytes
                    pending.append((shard_id, request_id))
        except BaseException:
            for shard_id, request_id in pending:
                self._client_of[shard_id].abandon(request_id)
            raise

        results = []
        first_error: Optional[BaseException] = None
        error_frame: Optional[ErrorFrame] = None
        stalled_shards = 0
        bytes_received = 0
        with span("shard_gather", transport=self.kind):
            for shard_id, request_id in pending:
                try:
                    message, nbytes = self._await(shard_id, request_id)
                except TransportError as exc:
                    if first_error is None:
                        first_error = exc
                    results.append(None)
                    continue
                bytes_received += nbytes
                if isinstance(message, ErrorFrame):
                    if error_frame is None:
                        error_frame = message
                    results.append(None)
                    continue
                handle = self._handles[shard_id]
                handle._absorb(message.pool_level, message.stats)
                stalled_shards += int(message.stalled)
                _absorb_worker_span(
                    trace, shard_id, message.worker_span, self.kind
                )
                results.append(message.to_result())
        if self._metrics is not None:
            self._metrics.record_transport_round(
                self.kind,
                time.perf_counter() - t0,
                bytes_sent=bytes_sent,
                bytes_received=bytes_received,
                stalled_shards=stalled_shards,
            )
        if error_frame is not None:
            error_frame.raise_()
        if first_error is not None:
            raise first_error
        return results

    def rekey_all(self, num_users: int) -> int:
        """Re-key every shard's worker session for a new member count.

        Besides the worker round trips, every stored copy of the shard
        specs is refreshed — ``self.specs``, the handles, and the
        client's re-pin registry — so a reconnect after the re-key
        replays a ``SessionSetup`` carrying the *new* geometry.
        """
        if self._closed:
            raise ProtocolError("session is closed")
        invalidated = 0
        first_error: Optional[BaseException] = None
        error_frame: Optional[ErrorFrame] = None
        for shard_id in range(len(self.specs)):
            client = self._client_of[shard_id]
            slot = self._slot_of[shard_id]
            try:
                client.ensure_connected()
                if not client.supports(CAP_BUFFERED_DRAINS):
                    raise TransportError(
                        f"worker at {client.address[0]}:"
                        f"{client.address[1]} does not support re-keying "
                        "(CAP_BUFFERED_DRAINS not acknowledged)"
                    )
                request_id, _ = self._request(
                    shard_id, RekeyRequest(slot, num_users)
                )
                message, _ = self._await(shard_id, request_id)
            except TransportError as exc:
                if first_error is None:
                    first_error = exc
                continue
            if isinstance(message, ErrorFrame):
                if error_frame is None:
                    error_frame = message
                continue
            invalidated += max(0, -int(message.rounds_added))
            new_spec = replace(self.specs[shard_id], num_users=num_users)
            self.specs[shard_id] = new_spec
            self._handles[shard_id].spec = new_spec
            self._handles[shard_id]._absorb(
                message.pool_level, message.stats, message.closed
            )
            with client._cv:
                if slot in client._slot_specs:
                    client._slot_specs[slot] = new_spec
        if error_frame is not None:
            error_frame.raise_()
        if first_error is not None:
            raise first_error
        return invalidated

    def refill_all(self, rounds: Optional[int] = None) -> int:
        """Scatter refills to every shard, then join (encodes overlap)."""
        tickets = []
        first_error: Optional[BaseException] = None
        for handle in self._handles:
            try:
                tickets.append((handle, handle.refill_begin(rounds)))
            except (ProtocolError, TransportError) as exc:
                if first_error is None:
                    first_error = exc
        added_max = 0
        for handle, ticket in tickets:
            try:
                added_max = max(added_max, handle.refill_join(ticket))
            except (ProtocolError, TransportError) as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return added_max

    def _release_clients(self) -> None:
        for client, listener in self._listeners:
            client.remove_repin_listener(listener)
            if self._metrics is not None:
                client.remove_reconnect_sink(self._metrics, self.kind)
        self._listeners = []
        for client in self._clients:
            # _client_of may be shorter than specs (failed mid-init) and
            # slots may be unallocated (None): release what exists.
            slots = [
                self._slot_of[s]
                for s in range(len(self._client_of))
                if self._client_of[s] is client
                and self._slot_of[s] is not None
            ]
            if slots and client.alive:
                try:
                    client.request(
                        SessionTeardown(slots),
                        timeout=client.heartbeat_timeout_s,
                    )
                except (TransportError, ProtocolError):
                    pass
            with client._cv:
                for slot in slots:
                    client._slot_specs.pop(slot, None)
            if self._shared:
                _POOL.release(client)
            else:
                client.close()
        self._clients = []
        self._client_of = []

    def close(self) -> None:
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._release_clients()
        for handle in getattr(self, "_handles", []):
            handle.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
