"""The aggregation service facade.

:class:`AggregationService` assembles a full service deployment from one
:class:`~repro.service.config.ServiceConfig`: per-cohort (and per-shard)
protocol instances and pooled sessions, the shared background refill
pipeline, the cohort scheduler, and the metrics sink.  It owns their
lifecycle — ``start()`` warms every pool and launches the refill worker,
``stop()`` shuts the worker down cleanly (a refill in flight completes)
and closes every session — and is a context manager::

    config = ServiceConfig(num_cohorts=4, num_shards=2,
                           refill_mode=RefillMode.BACKGROUND, low_water=2)
    with AggregationService(config) as svc:
        svc.run_synthetic(rounds=50, dropout_rate=0.1)
        print(svc.status())

Every aggregate the service produces is verified reassembly-exact: the
sharded, background-refilled path returns bit-identical field sums to a
single synchronous session over the full vector (the service tests pin
this down against the one-shot oracle).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import ProtocolError
from repro.field.arithmetic import FiniteField
from repro.protocols.base import AggregationResult
from repro.protocols.base import sample_dropouts
from repro.obs import RoundTrace, Tracer
from repro.quantization import ModelQuantizer
from repro.service.cohort import Cohort
from repro.service.engines import BufferedAsyncRoundEngine
from repro.service.config import (
    CohortSpec,
    RefillMode,
    ServiceConfig,
    TransportKind,
)
from repro.service.metrics import ServiceMetrics
from repro.service.refill import BackgroundRefiller
from repro.service.scheduler import CohortScheduler
from repro.service.sharding import ShardedSession, ShardPlan
from repro.service.transport import (
    ShardSessionSpec,
    ShardTransport,
    build_transport,
)


class AggregationService:
    """Many concurrent FL cohorts over pooled, sharded, refilled sessions.

    Cohort membership is dynamic: the constructor stamps
    ``config.num_cohorts`` copies of the config's uniform
    :class:`~repro.service.config.CohortSpec` (``build_cohorts=False``
    starts empty — the control-plane deployment), and
    :meth:`add_cohort` / :meth:`remove_cohort` admit and retire cohorts
    — each with its *own* spec, shard plan, and transport backend — on a
    running service without touching their neighbours.
    """

    def __init__(
        self,
        config: ServiceConfig,
        gf: Optional[FiniteField] = None,
        build_cohorts: bool = True,
    ):
        self.config = config
        self.gf = gf if gf is not None else FiniteField()
        self.metrics = ServiceMetrics()
        self.tracer = Tracer(
            enabled=config.tracing,
            capacity=config.trace_capacity,
            slow_factor=config.trace_slow_factor,
            metrics=self.metrics,
        )
        self.refiller: Optional[BackgroundRefiller] = None
        if config.refill_mode is RefillMode.BACKGROUND:
            self.refiller = BackgroundRefiller(
                poll_interval_s=config.refill_poll_interval_s,
                metrics=self.metrics,
            )
        self._cohort_lock = threading.RLock()
        self._cohorts: Dict[int, Cohort] = {}
        self._transports: Dict[int, ShardTransport] = {}
        self.cohort_specs: Dict[int, CohortSpec] = {}
        self._next_cohort_id = 0
        self.scheduler = CohortScheduler(allow_empty=True)
        self._started = False
        if build_cohorts:
            spec = config.cohort_spec()
            for _ in range(config.num_cohorts):
                self.add_cohort(spec)

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    @property
    def cohorts(self) -> List[Cohort]:
        """Live cohorts in creation order (ids are allocation order)."""
        with self._cohort_lock:
            return list(self._cohorts.values())

    def get_cohort(self, cohort_id: int) -> Optional[Cohort]:
        with self._cohort_lock:
            return self._cohorts.get(cohort_id)

    def _shard_specs(
        self, cohort_id: int, spec: CohortSpec, plan: ShardPlan
    ) -> List[ShardSessionSpec]:
        """Declarative per-shard session specs for one cohort.

        The spec — not a live session — is the unit both transports build
        from: the inline backend constructs the session in this process,
        the process backend ships the spec to a worker which constructs
        an identical one (same seed path, same rng streams, bit-identical
        pools).
        """
        # Buffered cohorts drain pooled masks through the sessions'
        # drain() path; the dedicated shard protocol selects the
        # drain-capable session class in every worker.
        protocol = (
            "lightsecagg-buffered"
            if spec.kind == "buffered"
            else spec.protocol
        )
        return [
            ShardSessionSpec(
                protocol=protocol,
                num_users=spec.num_users,
                shard_dim=plan.widths[shard],
                privacy=spec.privacy,
                dropout_tolerance=spec.dropout_tolerance,
                pool_size=spec.pool_size,
                low_water=spec.low_water,
                seed=(spec.seed, cohort_id, shard),
                field_modulus=self.gf.q,
            )
            for shard in range(spec.num_shards)
        ]

    def _build_cohort(self, cohort_id: int, spec: CohortSpec) -> Cohort:
        plan = ShardPlan(spec.model_dim, spec.num_shards)
        transport = build_transport(
            spec.transport.value,
            self._shard_specs(cohort_id, spec, plan),
            gf=self.gf,
            num_workers=spec.num_workers,
            metrics=self.metrics,
            cohort_id=cohort_id,
            connect=spec.connect,
            wire_format=spec.wire_format.value,
            tracing=self.tracer.enabled,
        )
        if spec.transport is TransportKind.INLINE and spec.num_shards == 1:
            # Unsharded inline deployments keep the bare session (no
            # coordinator indirection), exactly the pre-transport layout.
            session = transport.shard_handles[0]
        else:
            session = ShardedSession(plan, transport=transport)
        if self.refiller is not None:
            # Shard granularity: one shard can refill while another shard
            # of the same cohort is mid-round.  Metrics always sample the
            # cohort's *logical* depth (min over shards) so the series is
            # one consistent quantity.
            logical = session
            for handle in transport.shard_handles:
                self.refiller.register(
                    handle,
                    cohort_id,
                    depth_fn=lambda logical=logical: logical.pool_level,
                )
        with self._cohort_lock:
            self._transports[cohort_id] = transport
        engine = None
        if spec.kind == "buffered":
            engine = BufferedAsyncRoundEngine(
                gf=self.gf,
                num_users=spec.num_users,
                buffer_size=spec.buffer_size,
                staleness_fn=spec.staleness_fn,
                staleness_alpha=spec.staleness_alpha,
                staleness_levels=spec.staleness_levels,
                quant_levels=spec.quant_levels,
                quant_clip=spec.quant_clip,
                seed=spec.seed,
                privacy=spec.privacy,
                dropout_tolerance=spec.dropout_tolerance,
            )
        return Cohort(
            cohort_id,
            session,
            metrics=self.metrics,
            refiller=self.refiller,
            tracer=self.tracer,
            engine=engine,
        )

    # ------------------------------------------------------------------
    # runtime membership
    # ------------------------------------------------------------------
    def add_cohort(self, spec: Optional[CohortSpec] = None) -> Cohort:
        """Create and admit one cohort at runtime; returns it live.

        Thread-safe against concurrent adds/removes and against a
        scheduler sweep in flight (the new cohort joins the next sweep).
        On a started service the new cohort's pools are warmed inline
        here — before it is admitted to the scheduler — so its first
        round never stalls; before :meth:`start`, warming is deferred to
        it, exactly like statically-configured cohorts.
        """
        spec = spec if spec is not None else self.config.cohort_spec()
        with self._cohort_lock:
            cohort_id = self._next_cohort_id
            self._next_cohort_id += 1
        cohort = self._build_cohort(cohort_id, spec)
        if self._started and getattr(
            cohort.session, "supports_pool", False
        ):
            cohort.session.refill()
        with self._cohort_lock:
            self._cohorts[cohort_id] = cohort
            self.cohort_specs[cohort_id] = spec
        self.scheduler.add(cohort)
        return cohort

    def remove_cohort(self, cohort_id: int) -> None:
        """Close and retire one cohort without touching its neighbours.

        The cohort leaves the scheduler and the refiller watch list
        first, then its session closes (an in-flight round completes and
        keeps its result, per the cohort's close/round race contract),
        then its transport releases its backend — for process/socket
        backends that is the worker Shutdown/Teardown handshake for this
        cohort's shards only.
        """
        with self._cohort_lock:
            cohort = self._cohorts.pop(cohort_id, None)
            self.cohort_specs.pop(cohort_id, None)
            transport = self._transports.pop(cohort_id, None)
        if cohort is None:
            raise ProtocolError(f"service has no cohort {cohort_id}")
        self.scheduler.remove(cohort_id)
        if self.refiller is not None:
            self.refiller.unregister(cohort_id)
        cohort.close()
        if transport is not None:
            transport.close()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, warm_pools: bool = True) -> "AggregationService":
        """Warm every pool and launch the refill worker (idempotent)."""
        if self._started:
            return self
        if warm_pools:
            for cohort in self.cohorts:
                if getattr(cohort.session, "supports_pool", False):
                    cohort.session.refill()
        if self.refiller is not None:
            self.refiller.start()
        self._started = True
        return self

    def stop(self) -> None:
        """Stop the refill worker, close all sessions, shut workers down.

        Ordering matters: the refiller is joined first (a refill in
        flight completes and its material is delivered), then cohorts
        close their sessions, then transports release their backends —
        for the process transport that is the Shutdown handshake with
        every worker.
        """
        if self.refiller is not None:
            self.refiller.stop()
        with self._cohort_lock:
            cohorts = list(self._cohorts.values())
            transports = list(self._transports.values())
        for cohort in cohorts:
            cohort.close()
        for transport in transports:
            transport.close()
        self.tracer.close()
        self._started = False

    def __enter__(self) -> "AggregationService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # driving rounds
    # ------------------------------------------------------------------
    def run_round(
        self,
        cohort_id: int,
        updates: Dict[int, np.ndarray],
        dropouts: Optional[Set[int]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> AggregationResult:
        """One round for one cohort with caller-supplied updates."""
        return self._cohort(cohort_id).run_round(updates, dropouts, rng)

    def _cohort(self, cohort_id: int) -> Cohort:
        cohort = self.get_cohort(cohort_id)
        if cohort is None:
            raise ProtocolError(f"service has no cohort {cohort_id}")
        return cohort

    def submit_update(
        self,
        cohort_id: int,
        user_id: int,
        update: np.ndarray,
        download_round: Optional[int] = None,
        dropouts: Optional[Set[int]] = None,
    ) -> Dict:
        """Buffer one client update into a buffered cohort; the sealing
        submission drains the buffer and returns the aggregate."""
        return self._cohort(cohort_id).submit_update(
            user_id, update, download_round=download_round,
            dropouts=dropouts,
        )

    def join_cohort_member(self, cohort_id: int) -> Dict:
        """Admit one member to a buffered cohort (re-keys mask shares)."""
        return self._cohort(cohort_id).join_member()

    def leave_cohort_member(self, cohort_id: int, user_id: int) -> Dict:
        """Retire one member from a buffered cohort (re-keys mask
        shares)."""
        return self._cohort(cohort_id).leave_member(user_id)

    def run_quantized_round(
        self,
        cohort_id: int,
        real_updates: Dict[int, np.ndarray],
        dropouts: Optional[Set[int]] = None,
        quantizer: Optional[ModelQuantizer] = None,
        magnitude_bound: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, AggregationResult]:
        """One round whose updates are *real* model vectors.

        The end-to-end quantized path: each update is stochastically
        rounded into GF(q) by the quantizer (after
        :meth:`~repro.quantization.ModelQuantizer.check_budget` proves
        the sum cannot wrap), the field vectors ride the configured
        transport and wire format — with ``wire_format=PACKED`` every
        element travels in ``ceil(log2(q))`` bits instead of a full
        word — and the securely aggregated sum is mapped back to reals.
        Returns ``(real_aggregate, field_result)``.

        ``magnitude_bound`` defaults to the actual max ``|update|_inf``
        (fine for experiments; deployments enforcing a clip should pass
        their bound explicitly so the check covers adversarial inputs).
        """
        if not real_updates:
            raise ValueError("run_quantized_round needs at least one update")
        quantizer = (
            quantizer if quantizer is not None else ModelQuantizer(self.gf)
        )
        bound = magnitude_bound
        if bound is None:
            if quantizer.config.clip is not None:
                bound = quantizer.config.clip
            else:
                bound = max(
                    float(np.max(np.abs(np.asarray(u, dtype=np.float64))))
                    for u in real_updates.values()
                )
        quantizer.check_budget(len(real_updates), bound)
        field_updates = {
            uid: quantizer.quantize(update, rng)
            for uid, update in sorted(real_updates.items())
        }
        result = self._cohort(cohort_id).run_round(
            field_updates, dropouts, rng
        )
        return quantizer.dequantize(result.aggregate), result

    def run_synthetic(
        self,
        rounds: int,
        dropout_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        settle: bool = False,
        settle_timeout_s: float = 30.0,
    ) -> List[Dict[int, AggregationResult]]:
        """Round-robin sweeps with random field-vector updates.

        ``settle=True`` waits for the background refiller to top every
        pool back up between sweeps — the steady-state regime (client
        think time exceeds refill time) in which the zero-stall guarantee
        holds deterministically.  Leave it False to measure raw
        contention between draining and refilling.
        """
        rng = rng if rng is not None else np.random.default_rng(
            self.config.seed
        )

        def update_fn(cohort: Cohort, _round_index: int) -> Tuple[Dict, Set]:
            spec = self.cohort_specs.get(
                cohort.cohort_id, self.config.cohort_spec()
            )
            updates = {
                i: self.gf.random(spec.model_dim, rng)
                for i in range(spec.num_users)
            }
            dropouts = sample_dropouts(spec.num_users, dropout_rate, rng)
            return updates, dropouts

        results = []
        for _ in range(rounds):
            results.append(self.scheduler.run_sweep(update_fn, rng))
            if settle and self.refiller is not None:
                self.refiller.wait_until_idle(timeout=settle_timeout_s)
        return results

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def traces(
        self, cohort_id: Optional[int] = None, limit: int = 20
    ) -> List[RoundTrace]:
        """Recently completed round traces, most recent first."""
        return self.tracer.recent(cohort_id=cohort_id, limit=limit)

    def get_trace(self, trace_id: int) -> Optional[RoundTrace]:
        """One retained trace by id, or None if unknown/evicted."""
        return self.tracer.get(trace_id)

    def status(self) -> Dict:
        """JSON-serializable service snapshot (config, cohorts, metrics)."""
        cfg = self.config
        return {
            "config": {
                "num_cohorts": cfg.num_cohorts,
                "num_users": cfg.num_users,
                "model_dim": cfg.model_dim,
                "num_shards": cfg.num_shards,
                "pool_size": cfg.pool_size,
                "low_water": cfg.low_water,
                "refill_mode": cfg.refill_mode.value,
                "protocol": cfg.protocol,
                "kind": cfg.kind,
                "transport": cfg.transport.value,
                "wire_format": cfg.wire_format.value,
                "num_workers": cfg.num_workers,
                "connect": list(cfg.connect) if cfg.connect else None,
            },
            "field": {
                "modulus": self.gf.q,
                "reducer": self.gf.reducer.kind,
            },
            "transport": {
                "kind": cfg.transport.value,
                "workers_alive": sum(
                    getattr(t, "workers_alive", 0)
                    for t in self._transports.values()
                ),
                "workers_total": sum(
                    getattr(t, "num_workers", 0)
                    for t in self._transports.values()
                ),
            },
            "started": self._started,
            "tracing": {
                "enabled": self.tracer.enabled,
                "retained": self.tracer.retained,
                "slow_rounds": self.tracer.slow_rounds,
            },
            "refiller": None
            if self.refiller is None
            else {
                "running": self.refiller.running,
                "refills": self.refiller.refills,
                "rounds_refilled": self.refiller.rounds_refilled,
            },
            "cohorts": self.scheduler.status(),
            "metrics": self.metrics.snapshot(),
        }
