"""Thread-safe service metrics: pool depth, stalls, throughput.

The service's observability layer.  Producers (cohorts, the scheduler,
the background refiller) record events; consumers (the CLI ``service``
subcommand, the throughput benchmark, tests) read immutable snapshots.
Everything is guarded by one lock per cohort — contention is negligible
at round granularity and the snapshot is consistent.

A *stall* is the event the whole service layer exists to eliminate: an
online round that found its session pool empty and had to run the
offline encode inline on the critical path.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class CohortMetrics:
    """Counters and series for one cohort (internal, lock-guarded)."""

    rounds: int = 0
    stalls: int = 0
    online_seconds: float = 0.0
    background_refills: int = 0
    background_rounds_refilled: int = 0
    # (monotonic time, pool level) sampled at every round start and after
    # every background refill — the benchmark's pool-depth-over-time series.
    pool_depth_series: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def rounds_per_second(self) -> float:
        if self.online_seconds <= 0:
            return 0.0
        return self.rounds / self.online_seconds


@dataclass
class TransportMetrics:
    """Per-backend scatter/gather counters (internal, lock-guarded).

    One entry per transport kind (``inline`` / ``process``): logical
    rounds executed through that backend, wall-clock spent in its
    scatter+gather, wire traffic, and how many *shard*-level stalls its
    round results reported (a shard whose worker found an empty pool).
    """

    rounds: int = 0
    round_seconds: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0
    shard_stalls: int = 0
    # Vector payload bytes exchanged through shared memory instead of
    # the pipe/socket (shm payload mode only).  ``bytes_sent`` /
    # ``bytes_received`` count actual wire frames, so for the shm lane
    # they stay near zero while this carries the vector volume.
    shm_bytes: int = 0
    # Networked backends only: connections re-established (with session
    # re-pin) after a heartbeat timeout or socket error.
    reconnects: int = 0

    @property
    def mean_round_seconds(self) -> float:
        if self.rounds == 0:
            return 0.0
        return self.round_seconds / self.rounds


class ServiceMetrics:
    """Aggregated, thread-safe metrics across all cohorts.

    Every mutation *and* every read of the mutable series/counters
    happens under one lock: producers on the consumer and refiller
    threads call the ``record_*`` methods, readers get consistent copies
    via :meth:`snapshot` / :meth:`pool_depth_series` — internal lists are
    never handed out.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cohorts: Dict[int, CohortMetrics] = {}
        self._transports: Dict[str, TransportMetrics] = {}
        self._t0 = time.monotonic()

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def _cohort(self, cohort_id: int) -> CohortMetrics:
        return self._cohorts.setdefault(cohort_id, CohortMetrics())

    def record_round(
        self,
        cohort_id: int,
        online_seconds: float,
        stalled: bool,
        pool_level_before: Optional[int] = None,
    ) -> None:
        """Record one completed online round for a cohort."""
        with self._lock:
            m = self._cohort(cohort_id)
            m.rounds += 1
            m.online_seconds += online_seconds
            if stalled:
                m.stalls += 1
            if pool_level_before is not None:
                m.pool_depth_series.append(
                    (time.monotonic() - self._t0, pool_level_before)
                )

    def record_refill(
        self, cohort_id: int, rounds_added: int, pool_level_after: int
    ) -> None:
        """Record one background refill that topped a cohort's pool up."""
        with self._lock:
            m = self._cohort(cohort_id)
            m.background_refills += 1
            m.background_rounds_refilled += rounds_added
            m.pool_depth_series.append(
                (time.monotonic() - self._t0, pool_level_after)
            )

    def record_transport_round(
        self,
        kind: str,
        seconds: float,
        bytes_sent: int = 0,
        bytes_received: int = 0,
        stalled_shards: int = 0,
        shm_bytes: int = 0,
    ) -> None:
        """Record one logical round's scatter/gather through a backend."""
        with self._lock:
            t = self._transports.setdefault(kind, TransportMetrics())
            t.rounds += 1
            t.round_seconds += seconds
            t.bytes_sent += bytes_sent
            t.bytes_received += bytes_received
            t.shard_stalls += stalled_shards
            t.shm_bytes += shm_bytes

    def record_transport_reconnect(self, kind: str) -> None:
        """Record one reconnect (+ session re-pin) of a networked backend."""
        with self._lock:
            t = self._transports.setdefault(kind, TransportMetrics())
            t.reconnects += 1

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def pool_depth_series(self, cohort_id: int) -> List[Tuple[float, int]]:
        """A consistent copy of one cohort's pool-depth series.

        Samplers on other threads (benchmark pollers, dashboards) must go
        through this accessor — the internal list is appended to by both
        the consumer and the refiller thread and is never exposed raw.
        """
        with self._lock:
            m = self._cohorts.get(cohort_id)
            return [] if m is None else list(m.pool_depth_series)

    def snapshot(self) -> Dict:
        """Consistent point-in-time view, JSON-serializable."""
        with self._lock:
            cohorts = {}
            for cid, m in sorted(self._cohorts.items()):
                cohorts[cid] = {
                    "rounds": m.rounds,
                    "stalls": m.stalls,
                    "online_seconds": m.online_seconds,
                    "rounds_per_second": m.rounds_per_second,
                    "background_refills": m.background_refills,
                    "background_rounds_refilled": m.background_rounds_refilled,
                    "pool_depth_series": list(m.pool_depth_series),
                }
            transports = {}
            for kind, t in sorted(self._transports.items()):
                transports[kind] = {
                    "rounds": t.rounds,
                    "round_seconds": t.round_seconds,
                    "mean_round_seconds": t.mean_round_seconds,
                    "bytes_sent": t.bytes_sent,
                    "bytes_received": t.bytes_received,
                    "shm_bytes": t.shm_bytes,
                    "shard_stalls": t.shard_stalls,
                    "reconnects": t.reconnects,
                }
            return {
                "uptime_seconds": time.monotonic() - self._t0,
                "total_rounds": sum(m.rounds for m in self._cohorts.values()),
                "total_stalls": sum(m.stalls for m in self._cohorts.values()),
                "cohorts": cohorts,
                "transports": transports,
            }

    @property
    def total_rounds(self) -> int:
        with self._lock:
            return sum(m.rounds for m in self._cohorts.values())

    @property
    def total_stalls(self) -> int:
        with self._lock:
            return sum(m.stalls for m in self._cohorts.values())
