"""Thread-safe service metrics: pool depth, stalls, throughput.

The service's observability layer.  Producers (cohorts, the scheduler,
the background refiller) record events; consumers (the CLI ``service``
subcommand, the throughput benchmark, tests) read immutable snapshots.
Everything is guarded by one lock per cohort — contention is negligible
at round granularity and the snapshot is consistent.

A *stall* is the event the whole service layer exists to eliminate: an
online round that found its session pool empty and had to run the
offline encode inline on the critical path.
"""

from __future__ import annotations

import bisect
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Upper bucket bounds (seconds) of the online-round latency histogram,
#: Prometheus-style cumulative.  Spans sub-millisecond inline rounds at
#: toy dims through multi-second sharded rounds at paper-scale models;
#: the implicit final bucket is +Inf.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


def _latency_histogram() -> List[int]:
    return [0] * (len(LATENCY_BUCKETS_S) + 1)  # trailing slot is +Inf


#: Upper bucket bounds (rounds) of the per-drain staleness histogram in
#: buffered-async cohorts: tau = seal round - download round.  Most
#: deliveries in the paper's regime are fresh (tau <= 2); the tail
#: buckets catch stragglers several drains behind.  Implicit final
#: bucket is +Inf.
STALENESS_BUCKETS: Tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32)


def _staleness_histogram() -> List[int]:
    return [0] * (len(STALENESS_BUCKETS) + 1)  # trailing slot is +Inf


def _fmt(value) -> str:
    """Prometheus sample formatting: integral floats without the dot."""
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


@dataclass
class CohortMetrics:
    """Counters and series for one cohort (internal, lock-guarded)."""

    rounds: int = 0
    stalls: int = 0
    online_seconds: float = 0.0
    background_refills: int = 0
    background_rounds_refilled: int = 0
    # Wall-clock (unix) time the cohort last completed a round; 0 until
    # the first round.  Exported as a gauge so dashboards can alert on
    # cohorts that have gone quiet.
    last_round_unix: float = 0.0
    # (monotonic time, pool level) sampled at every round start and after
    # every background refill — the benchmark's pool-depth-over-time series.
    pool_depth_series: List[Tuple[float, int]] = field(default_factory=list)
    # Per-bucket observation counts aligned with LATENCY_BUCKETS_S (last
    # slot is the +Inf overflow); non-cumulative, cumulated at render.
    latency_buckets: List[int] = field(default_factory=_latency_histogram)
    # --- buffered-async cohorts only (all zero on sync cohorts, and
    # their Prometheus samples are suppressed so sync scrapes stay
    # byte-compatible modulo the new header lines). ---
    # Current buffer occupancy / capacity (gauges, updated per submit).
    buffer_fill: int = 0
    buffer_capacity: int = 0
    # Buffer drains completed (each is also counted in ``rounds``).
    drains: int = 0
    # Per-delivery staleness distribution across all drains, aligned
    # with STALENESS_BUCKETS (+Inf overflow in the last slot).
    staleness_buckets: List[int] = field(
        default_factory=_staleness_histogram
    )
    staleness_sum: int = 0
    staleness_count: int = 0
    # Elastic membership churn ("join" / "leave" counters).
    membership_events: Dict[str, int] = field(default_factory=dict)

    def observe_staleness(self, tau: int) -> None:
        self.staleness_buckets[
            bisect.bisect_left(STALENESS_BUCKETS, tau)
        ] += 1
        self.staleness_sum += tau
        self.staleness_count += 1

    def observe_latency(self, seconds: float) -> None:
        self.latency_buckets[
            bisect.bisect_left(LATENCY_BUCKETS_S, seconds)
        ] += 1

    @property
    def rounds_per_second(self) -> float:
        if self.online_seconds <= 0:
            return 0.0
        return self.rounds / self.online_seconds


@dataclass
class PhaseMetrics:
    """Latency histogram for one trace phase (internal, lock-guarded).

    Fed by the :class:`~repro.obs.Tracer` from each finished round's
    top-level spans, keyed by base phase name (``shard_compute[3]``
    reports as ``shard_compute``).
    """

    count: int = 0
    seconds: float = 0.0
    latency_buckets: List[int] = field(default_factory=_latency_histogram)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.seconds += seconds
        self.latency_buckets[
            bisect.bisect_left(LATENCY_BUCKETS_S, seconds)
        ] += 1


@dataclass
class TransportMetrics:
    """Per-backend scatter/gather counters (internal, lock-guarded).

    One entry per transport kind (``inline`` / ``process``): logical
    rounds executed through that backend, wall-clock spent in its
    scatter+gather, wire traffic, and how many *shard*-level stalls its
    round results reported (a shard whose worker found an empty pool).
    """

    rounds: int = 0
    round_seconds: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0
    shard_stalls: int = 0
    # Vector payload bytes exchanged through shared memory instead of
    # the pipe/socket (shm payload mode only).  ``bytes_sent`` /
    # ``bytes_received`` count actual wire frames, so for the shm lane
    # they stay near zero while this carries the vector volume.
    shm_bytes: int = 0
    # Networked backends only: connections re-established (with session
    # re-pin) after a heartbeat timeout or socket error.
    reconnects: int = 0

    @property
    def mean_round_seconds(self) -> float:
        if self.rounds == 0:
            return 0.0
        return self.round_seconds / self.rounds


class ServiceMetrics:
    """Aggregated, thread-safe metrics across all cohorts.

    Every mutation *and* every read of the mutable series/counters
    happens under one lock: producers on the consumer and refiller
    threads call the ``record_*`` methods, readers get consistent copies
    via :meth:`snapshot` / :meth:`pool_depth_series` — internal lists are
    never handed out.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cohorts: Dict[int, CohortMetrics] = {}
        self._transports: Dict[str, TransportMetrics] = {}
        self._phases: Dict[str, PhaseMetrics] = {}
        self._t0 = time.monotonic()

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def _cohort(self, cohort_id: int) -> CohortMetrics:
        return self._cohorts.setdefault(cohort_id, CohortMetrics())

    def record_round(
        self,
        cohort_id: int,
        online_seconds: float,
        stalled: bool,
        pool_level_before: Optional[int] = None,
    ) -> None:
        """Record one completed online round for a cohort."""
        with self._lock:
            m = self._cohort(cohort_id)
            m.rounds += 1
            m.online_seconds += online_seconds
            m.observe_latency(online_seconds)
            m.last_round_unix = time.time()
            if stalled:
                m.stalls += 1
            if pool_level_before is not None:
                m.pool_depth_series.append(
                    (time.monotonic() - self._t0, pool_level_before)
                )

    def record_refill(
        self, cohort_id: int, rounds_added: int, pool_level_after: int
    ) -> None:
        """Record one background refill that topped a cohort's pool up."""
        with self._lock:
            m = self._cohort(cohort_id)
            m.background_refills += 1
            m.background_rounds_refilled += rounds_added
            m.pool_depth_series.append(
                (time.monotonic() - self._t0, pool_level_after)
            )

    def record_submit(
        self, cohort_id: int, buffer_fill: int, buffer_capacity: int
    ) -> None:
        """Record one buffered submission (buffer occupancy gauge)."""
        with self._lock:
            m = self._cohort(cohort_id)
            m.buffer_fill = buffer_fill
            m.buffer_capacity = buffer_capacity

    def record_drain(
        self, cohort_id: int, staleness: List[int]
    ) -> None:
        """Record one buffer drain and its per-delivery staleness."""
        with self._lock:
            m = self._cohort(cohort_id)
            m.drains += 1
            m.buffer_fill = 0
            for tau in staleness:
                m.observe_staleness(int(tau))

    def record_membership(self, cohort_id: int, event: str) -> None:
        """Record one elastic-membership event (``join`` / ``leave``)."""
        with self._lock:
            m = self._cohort(cohort_id)
            m.membership_events[event] = (
                m.membership_events.get(event, 0) + 1
            )

    def record_transport_round(
        self,
        kind: str,
        seconds: float,
        bytes_sent: int = 0,
        bytes_received: int = 0,
        stalled_shards: int = 0,
        shm_bytes: int = 0,
    ) -> None:
        """Record one logical round's scatter/gather through a backend."""
        with self._lock:
            t = self._transports.setdefault(kind, TransportMetrics())
            t.rounds += 1
            t.round_seconds += seconds
            t.bytes_sent += bytes_sent
            t.bytes_received += bytes_received
            t.shard_stalls += stalled_shards
            t.shm_bytes += shm_bytes

    def record_phase(self, phase: str, seconds: float) -> None:
        """Record one top-level trace span into its phase histogram."""
        with self._lock:
            self._phases.setdefault(phase, PhaseMetrics()).observe(seconds)

    def record_transport_reconnect(self, kind: str) -> None:
        """Record one reconnect (+ session re-pin) of a networked backend."""
        with self._lock:
            t = self._transports.setdefault(kind, TransportMetrics())
            t.reconnects += 1

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def pool_depth_series(self, cohort_id: int) -> List[Tuple[float, int]]:
        """A consistent copy of one cohort's pool-depth series.

        Samplers on other threads (benchmark pollers, dashboards) must go
        through this accessor — the internal list is appended to by both
        the consumer and the refiller thread and is never exposed raw.
        """
        with self._lock:
            m = self._cohorts.get(cohort_id)
            return [] if m is None else list(m.pool_depth_series)

    def snapshot(self) -> Dict:
        """Consistent point-in-time view, JSON-serializable."""
        with self._lock:
            cohorts = {}
            for cid, m in sorted(self._cohorts.items()):
                cohorts[cid] = {
                    "rounds": m.rounds,
                    "stalls": m.stalls,
                    "online_seconds": m.online_seconds,
                    "rounds_per_second": m.rounds_per_second,
                    "background_refills": m.background_refills,
                    "background_rounds_refilled": m.background_rounds_refilled,
                    "pool_depth_series": list(m.pool_depth_series),
                    "latency_buckets": list(m.latency_buckets),
                    "last_round_unix": m.last_round_unix,
                    "buffer_fill": m.buffer_fill,
                    "buffer_capacity": m.buffer_capacity,
                    "drains": m.drains,
                    "staleness_buckets": list(m.staleness_buckets),
                    "staleness_sum": m.staleness_sum,
                    "staleness_count": m.staleness_count,
                    "membership_events": dict(m.membership_events),
                }
            transports = {}
            for kind, t in sorted(self._transports.items()):
                transports[kind] = {
                    "rounds": t.rounds,
                    "round_seconds": t.round_seconds,
                    "mean_round_seconds": t.mean_round_seconds,
                    "bytes_sent": t.bytes_sent,
                    "bytes_received": t.bytes_received,
                    "shm_bytes": t.shm_bytes,
                    "shard_stalls": t.shard_stalls,
                    "reconnects": t.reconnects,
                }
            phases = {}
            for name, p in sorted(self._phases.items()):
                phases[name] = {
                    "count": p.count,
                    "seconds": p.seconds,
                    "latency_buckets": list(p.latency_buckets),
                }
            return {
                "uptime_seconds": time.monotonic() - self._t0,
                "total_rounds": sum(m.rounds for m in self._cohorts.values()),
                "total_stalls": sum(m.stalls for m in self._cohorts.values()),
                "cohorts": cohorts,
                "transports": transports,
                "phases": phases,
            }

    def render_prometheus(self) -> str:
        """Prometheus text-format exposition of every series.

        One consistent scrape: the whole render happens under the
        metrics lock, so a round or refill recorded concurrently either
        lands in every family it touches or in none.  Metric names,
        types, and label keys are pinned by the golden-file test — treat
        them as a public interface (dashboards bind to them).
        """
        with self._lock:
            lines: List[str] = []

            def family(name: str, kind: str, help_text: str) -> None:
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")

            def sample(name: str, labels: Dict[str, str], value) -> None:
                if labels:
                    body = ",".join(
                        f'{k}="{v}"' for k, v in labels.items()
                    )
                    lines.append(f"{name}{{{body}}} {_fmt(value)}")
                else:
                    lines.append(f"{name} {_fmt(value)}")

            family(
                "repro_uptime_seconds", "gauge",
                "Seconds since the service metrics sink was created.",
            )
            sample(
                "repro_uptime_seconds", {}, time.monotonic() - self._t0
            )

            cohorts = sorted(self._cohorts.items())
            family(
                "repro_rounds_total", "counter",
                "Completed online aggregation rounds per cohort.",
            )
            for cid, m in cohorts:
                sample("repro_rounds_total", {"cohort": str(cid)}, m.rounds)
            family(
                "repro_stalls_total", "counter",
                "Online rounds that found their offline pool empty.",
            )
            for cid, m in cohorts:
                sample("repro_stalls_total", {"cohort": str(cid)}, m.stalls)
            family(
                "repro_online_seconds_total", "counter",
                "Wall-clock seconds spent in the online round path.",
            )
            for cid, m in cohorts:
                sample(
                    "repro_online_seconds_total", {"cohort": str(cid)},
                    m.online_seconds,
                )
            def histogram(
                name: str,
                labels: Dict[str, str],
                buckets: List[int],
                seconds_sum: float,
                count: int,
            ) -> None:
                cumulative = 0
                for bound, n in zip(LATENCY_BUCKETS_S, buckets):
                    cumulative += n
                    sample(
                        f"{name}_bucket",
                        {**labels, "le": _fmt(bound)},
                        cumulative,
                    )
                cumulative += buckets[-1]
                sample(
                    f"{name}_bucket", {**labels, "le": "+Inf"}, cumulative
                )
                sample(f"{name}_sum", labels, seconds_sum)
                sample(f"{name}_count", labels, count)

            family(
                "repro_round_latency_seconds", "histogram",
                "Online round latency distribution per cohort.",
            )
            for cid, m in cohorts:
                histogram(
                    "repro_round_latency_seconds", {"cohort": str(cid)},
                    m.latency_buckets, m.online_seconds, m.rounds,
                )
            family(
                "repro_phase_latency_seconds", "histogram",
                "Per-phase latency from round traces (top-level spans).",
            )
            for pname, p in sorted(self._phases.items()):
                histogram(
                    "repro_phase_latency_seconds", {"phase": pname},
                    p.latency_buckets, p.seconds, p.count,
                )
            family(
                "repro_last_round_unix_seconds", "gauge",
                "Unix time each cohort last completed a round.",
            )
            for cid, m in cohorts:
                sample(
                    "repro_last_round_unix_seconds", {"cohort": str(cid)},
                    m.last_round_unix,
                )
            family(
                "repro_pool_depth", "gauge",
                "Most recently sampled offline pool depth per cohort.",
            )
            for cid, m in cohorts:
                if m.pool_depth_series:
                    sample(
                        "repro_pool_depth", {"cohort": str(cid)},
                        m.pool_depth_series[-1][1],
                    )
            family(
                "repro_background_refills_total", "counter",
                "Background pool top-ups per cohort.",
            )
            for cid, m in cohorts:
                sample(
                    "repro_background_refills_total", {"cohort": str(cid)},
                    m.background_refills,
                )
            family(
                "repro_background_rounds_refilled_total", "counter",
                "Rounds of offline material delivered by background refills.",
            )
            for cid, m in cohorts:
                sample(
                    "repro_background_rounds_refilled_total",
                    {"cohort": str(cid)},
                    m.background_rounds_refilled,
                )

            # --- buffered-async families.  HELP/TYPE headers render
            # unconditionally (the exposition is self-describing);
            # samples only exist for cohorts that have buffered state,
            # so a sync-only deployment's scrape differs from the
            # pre-buffered format by header lines alone.
            buffered = [
                (cid, m)
                for cid, m in cohorts
                if m.buffer_capacity > 0
                or m.drains > 0
                or m.membership_events
            ]
            family(
                "repro_buffer_fill", "gauge",
                "Current update-buffer occupancy per buffered cohort.",
            )
            for cid, m in buffered:
                sample(
                    "repro_buffer_fill", {"cohort": str(cid)}, m.buffer_fill
                )
            family(
                "repro_buffer_capacity", "gauge",
                "Seal threshold K of each buffered cohort's buffer.",
            )
            for cid, m in buffered:
                sample(
                    "repro_buffer_capacity", {"cohort": str(cid)},
                    m.buffer_capacity,
                )
            family(
                "repro_drains_total", "counter",
                "Completed buffer drains per buffered cohort.",
            )
            for cid, m in buffered:
                sample(
                    "repro_drains_total", {"cohort": str(cid)}, m.drains
                )
            family(
                "repro_drain_staleness", "histogram",
                "Per-delivery staleness (rounds) across buffer drains.",
            )
            for cid, m in buffered:
                labels = {"cohort": str(cid)}
                cumulative = 0
                for bound, n in zip(
                    STALENESS_BUCKETS, m.staleness_buckets
                ):
                    cumulative += n
                    sample(
                        "repro_drain_staleness_bucket",
                        {**labels, "le": _fmt(float(bound))},
                        cumulative,
                    )
                cumulative += m.staleness_buckets[-1]
                sample(
                    "repro_drain_staleness_bucket",
                    {**labels, "le": "+Inf"},
                    cumulative,
                )
                sample(
                    "repro_drain_staleness_sum", labels, m.staleness_sum
                )
                sample(
                    "repro_drain_staleness_count", labels,
                    m.staleness_count,
                )
            family(
                "repro_membership_events_total", "counter",
                "Elastic membership changes per buffered cohort.",
            )
            for cid, m in buffered:
                for event in sorted(m.membership_events):
                    sample(
                        "repro_membership_events_total",
                        {"cohort": str(cid), "event": event},
                        m.membership_events[event],
                    )

            transports = sorted(self._transports.items())
            for name, kind, help_text, attr in (
                ("repro_transport_rounds_total", "counter",
                 "Logical rounds scatter/gathered per transport backend.",
                 "rounds"),
                ("repro_transport_round_seconds_total", "counter",
                 "Wall-clock seconds in transport scatter/gather.",
                 "round_seconds"),
                ("repro_transport_bytes_sent_total", "counter",
                 "Wire bytes sent per transport backend.",
                 "bytes_sent"),
                ("repro_transport_bytes_received_total", "counter",
                 "Wire bytes received per transport backend.",
                 "bytes_received"),
                ("repro_transport_shm_bytes_total", "counter",
                 "Vector payload bytes exchanged via shared memory.",
                 "shm_bytes"),
                ("repro_transport_shard_stalls_total", "counter",
                 "Shard-level rounds that found an empty worker pool.",
                 "shard_stalls"),
                ("repro_transport_reconnects_total", "counter",
                 "Connections re-established (with session re-pin).",
                 "reconnects"),
            ):
                family(name, kind, help_text)
                for tkind, t in transports:
                    sample(
                        name, {"transport": tkind}, getattr(t, attr)
                    )
            return "\n".join(lines) + "\n"

    @property
    def total_rounds(self) -> int:
        with self._lock:
            return sum(m.rounds for m in self._cohorts.values())

    @property
    def total_stalls(self) -> int:
        with self._lock:
            return sum(m.stalls for m in self._cohorts.values())
