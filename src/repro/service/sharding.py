"""Model-vector sharding across per-shard protocol sessions.

Secure aggregation is elementwise: the field sum of the surviving users'
updates decomposes coordinate-by-coordinate.  A :class:`ShardPlan`
partitions the length-``d`` model vector into ``S`` contiguous slices
(the same near-even split :mod:`repro.coding.partition` uses, without
padding), and a :class:`ShardedSession` drives one pooled protocol
session per shard: client updates are *scattered* into per-shard slices,
every shard runs the same round against the same dropout set, and the
shard aggregates are *gathered* back into one vector.

Because the per-shard field sums are exact, reassembly is bit-identical
to running the round through a single session over the full vector —
that is the correctness contract the service tests pin down.  What
sharding buys is systems headroom: each shard's offline pool is
``S``-times narrower (cheaper refills that can proceed in parallel and
interleave with draining), and in a deployment each shard would live on
its own worker.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.exceptions import ProtocolError
from repro.obs import span
from repro.protocols.base import (
    AggregationResult,
    RoundMetrics,
    SessionStats,
    Transcript,
)
from repro.service.transport import InlineTransport, ShardTransport


class ShardPlan:
    """Contiguous near-even partition of ``dim`` into ``num_shards`` slices."""

    def __init__(self, dim: int, num_shards: int):
        if dim < 1:
            raise ProtocolError(f"dim must be >= 1, got {dim}")
        if not 1 <= num_shards <= dim:
            raise ProtocolError(
                f"num_shards must be in [1, dim={dim}], got {num_shards}"
            )
        self.dim = int(dim)
        self.num_shards = int(num_shards)
        base, extra = divmod(self.dim, self.num_shards)
        self.widths: List[int] = [
            base + (1 if s < extra else 0) for s in range(self.num_shards)
        ]
        self.offsets: List[int] = [0]
        for w in self.widths[:-1]:
            self.offsets.append(self.offsets[-1] + w)

    def slice(self, shard: int) -> slice:
        return slice(
            self.offsets[shard], self.offsets[shard] + self.widths[shard]
        )

    def scatter(self, vector: np.ndarray) -> List[np.ndarray]:
        """Split one full-length vector into its per-shard slices."""
        vector = np.asarray(vector)
        if vector.shape != (self.dim,):
            raise ProtocolError(
                f"expected a vector of shape ({self.dim},), got {vector.shape}"
            )
        return [vector[self.slice(s)] for s in range(self.num_shards)]

    def gather(self, pieces: Sequence[np.ndarray]) -> np.ndarray:
        """Reassemble per-shard slices into one full-length vector."""
        if len(pieces) != self.num_shards:
            raise ProtocolError(
                f"expected {self.num_shards} shard pieces, got {len(pieces)}"
            )
        for s, piece in enumerate(pieces):
            if np.asarray(piece).shape != (self.widths[s],):
                raise ProtocolError(
                    f"shard {s} piece has shape {np.asarray(piece).shape}, "
                    f"expected ({self.widths[s]},)"
                )
        return np.concatenate(pieces)

    def __repr__(self) -> str:
        return f"ShardPlan(dim={self.dim}, shards={self.widths})"


class ShardedSession:
    """Coordinator that drives one protocol session per model shard.

    Exposes the same surface as a
    :class:`~repro.protocols.base.ProtocolSession` (``run_round``,
    ``refill``, ``pool_level``, ``needs_refill``, ``close``, ``stats``
    ...), so the FL loop, the cohort state machine, and the background
    refiller all treat it interchangeably with a single-shard session.

    Shard execution is delegated to a
    :class:`~repro.service.transport.ShardTransport`: pass live sessions
    (wrapped in an :class:`~repro.service.transport.InlineTransport`,
    the original direct-call behaviour, bit-identical) or any other
    backend via ``transport=`` — e.g. a
    :class:`~repro.service.transport.ProcessPoolTransport` whose shard
    rounds run on separate cores.  Per-shard handles can also be
    registered with a refiller *individually* (see
    :attr:`shard_sessions`), which lets their refills interleave with
    rounds at shard granularity.
    """

    def __init__(
        self,
        plan: ShardPlan,
        shard_sessions: Optional[Sequence] = None,
        *,
        transport: Optional[ShardTransport] = None,
    ):
        if (shard_sessions is None) == (transport is None):
            raise ProtocolError(
                "pass exactly one of shard_sessions= or transport="
            )
        if transport is None:
            self._validate_sessions(plan, shard_sessions)
            transport = InlineTransport(shard_sessions)
        if transport.num_shards != plan.num_shards:
            raise ProtocolError(
                f"plan has {plan.num_shards} shards but the transport "
                f"drives {transport.num_shards}"
            )
        self.plan = plan
        self.transport = transport
        self.shard_sessions = list(transport.shard_handles)
        self.num_users = self._shared_num_users(self.shard_sessions)
        self.stats = SessionStats()
        self._logical_misses = 0  # rounds in which any shard missed

    @staticmethod
    def _validate_sessions(plan: ShardPlan, shard_sessions: Sequence) -> None:
        if len(shard_sessions) != plan.num_shards:
            raise ProtocolError(
                f"plan has {plan.num_shards} shards but "
                f"{len(shard_sessions)} sessions were supplied"
            )
        for s, sess in enumerate(shard_sessions):
            if sess.protocol.model_dim != plan.widths[s]:
                raise ProtocolError(
                    f"shard {s} session covers d={sess.protocol.model_dim}, "
                    f"plan expects {plan.widths[s]}"
                )
        if len({sess.gf for sess in shard_sessions}) != 1:
            raise ProtocolError("shard sessions disagree on the field")

    @staticmethod
    def _shared_num_users(handles: Sequence) -> int:
        users = {
            h.num_users if hasattr(h, "num_users") else h.spec.num_users
            for h in handles
        }
        if len(users) != 1:
            raise ProtocolError(
                f"shard sessions disagree on user count: {sorted(users)}"
            )
        return users.pop()

    # ------------------------------------------------------------------
    # session surface (pool management)
    # ------------------------------------------------------------------
    @property
    def gf(self):
        """The shared field (validated identical across shard protocols)."""
        return self.transport.gf

    @property
    def pool_level(self) -> int:
        """Rounds servable without a refill: the min over shards."""
        return min(s.pool_level for s in self.shard_sessions)

    @property
    def pool_size(self) -> int:
        return min(s.pool_size for s in self.shard_sessions)

    @property
    def supports_pool(self) -> bool:
        return all(s.supports_pool for s in self.shard_sessions)

    @property
    def needs_refill(self) -> bool:
        return any(s.needs_refill for s in self.shard_sessions)

    @property
    def closed(self) -> bool:
        return self.transport.closed or any(
            s.closed for s in self.shard_sessions
        )

    def refill(self, rounds: Optional[int] = None) -> int:
        """Refill every shard; returns the max rounds added to any shard.

        On a process transport the per-shard refill requests are all
        scattered before any is joined, so the encodes overlap across
        worker cores.
        """
        return self.transport.refill_all(rounds)

    def offline_elements(self) -> int:
        return sum(s.offline_elements() for s in self.shard_sessions)

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "ShardedSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the round: scatter -> per-shard rounds -> gather
    # ------------------------------------------------------------------
    def run_round(
        self,
        updates: Dict[int, np.ndarray],
        dropouts: Set[int],
        rng: Optional[np.random.Generator] = None,
        **phase_kwargs,
    ) -> AggregationResult:
        """One logical round across all shards.

        Every shard session sees the same dropout set (and any
        ``phase_kwargs`` like ``offline_dropouts``), so survivor sets
        agree by construction; the reassembled aggregate is bit-identical
        to the single-shard path because field sums are elementwise.
        """
        scattered: Dict[int, List[np.ndarray]] = {
            uid: self.plan.scatter(vec) for uid, vec in updates.items()
        }
        per_shard_updates = [
            {uid: parts[s] for uid, parts in scattered.items()}
            for s in range(self.plan.num_shards)
        ]
        misses_before = sum(s.stats.pool_misses for s in self.shard_sessions)
        shard_results: List[AggregationResult] = self.transport.run_all(
            per_shard_updates, dropouts, rng, **phase_kwargs
        )
        misses_after = sum(s.stats.pool_misses for s in self.shard_sessions)
        if misses_after > misses_before:
            self._logical_misses += 1

        survivors = shard_results[0].survivors
        for s, res in enumerate(shard_results[1:], start=1):
            if res.survivors != survivors:
                raise ProtocolError(
                    f"shard {s} diverged on survivors: {res.survivors} "
                    f"vs {survivors}"
                )
        with span("reconstruct", shards=str(self.plan.num_shards)):
            aggregate = self.plan.gather(
                [r.aggregate for r in shard_results]
            )

            transcript = Transcript()
            metrics = RoundMetrics()
            for res in shard_results:
                transcript.messages.extend(res.transcript.messages)
                metrics.server_decode_ops += res.metrics.server_decode_ops
                metrics.server_prg_elements += res.metrics.server_prg_elements
                metrics.user_encode_ops += res.metrics.user_encode_ops
                for key, val in res.metrics.extra.items():
                    metrics.extra[key] = metrics.extra.get(key, 0.0) + val

        self.stats.rounds += 1
        self._merge_shard_stats()
        return AggregationResult(
            aggregate=aggregate,
            survivors=survivors,
            transcript=transcript,
            metrics=metrics,
        )

    def drain(
        self,
        weights,
        updates: np.ndarray,
        recovery_dropouts: Optional[Set[int]] = None,
    ) -> AggregationResult:
        """One buffered drain across all shards (buffered sessions only).

        ``updates`` is the full ``(B, dim)`` matrix of unweighted
        quantized deliveries in buffer order; each shard drains its
        column slice under the shared weight vector, so the reassembled
        aggregate is bit-identical to a single full-width drain for the
        same reason rounds are — field sums are elementwise.
        """
        updates = np.asarray(updates, dtype=np.uint64)
        if updates.ndim != 2 or updates.shape[1] != self.plan.dim:
            raise ProtocolError(
                f"expected a (B, {self.plan.dim}) update matrix, got "
                f"{updates.shape}"
            )
        per_shard_updates = [
            np.ascontiguousarray(updates[:, self.plan.slice(s)])
            for s in range(self.plan.num_shards)
        ]
        misses_before = sum(s.stats.pool_misses for s in self.shard_sessions)
        shard_results: List[AggregationResult] = self.transport.drain_all(
            weights, per_shard_updates, set(recovery_dropouts or set())
        )
        misses_after = sum(s.stats.pool_misses for s in self.shard_sessions)
        if misses_after > misses_before:
            self._logical_misses += 1

        survivors = shard_results[0].survivors
        for s, res in enumerate(shard_results[1:], start=1):
            if res.survivors != survivors:
                raise ProtocolError(
                    f"shard {s} diverged on survivors: {res.survivors} "
                    f"vs {survivors}"
                )
        with span("reconstruct", shards=str(self.plan.num_shards)):
            aggregate = self.plan.gather(
                [r.aggregate for r in shard_results]
            )
            transcript = Transcript()
            metrics = RoundMetrics()
            for res in shard_results:
                transcript.messages.extend(res.transcript.messages)
                metrics.server_decode_ops += res.metrics.server_decode_ops
                metrics.server_prg_elements += res.metrics.server_prg_elements
                metrics.user_encode_ops += res.metrics.user_encode_ops
                for key, val in res.metrics.extra.items():
                    metrics.extra[key] = metrics.extra.get(key, 0.0) + val

        self.stats.rounds += 1
        self._merge_shard_stats()
        return AggregationResult(
            aggregate=aggregate,
            survivors=survivors,
            transcript=transcript,
            metrics=metrics,
        )

    def rekey(self, num_users: int) -> int:
        """Re-key every shard for a new member count (buffered only)."""
        invalidated = self.transport.rekey_all(num_users)
        self.num_users = int(num_users)
        return invalidated

    def _merge_shard_stats(self) -> None:
        """Mirror per-shard counters into this coordinator's stats.

        ``pool_misses`` counts *logical* rounds in which at least one
        shard ran an inline refill (one shard stalling stalls the whole
        round — tracked per round, since different shards can miss in
        different rounds); ``pool_hits`` is the complement.  Refill
        counters are summed across shards.
        """
        self.stats.refills = sum(s.stats.refills for s in self.shard_sessions)
        self.stats.precomputed_rounds = sum(
            s.stats.precomputed_rounds for s in self.shard_sessions
        )
        self.stats.refill_seconds = sum(
            s.stats.refill_seconds for s in self.shard_sessions
        )
        self.stats.pool_misses = self._logical_misses
        self.stats.pool_hits = self.stats.rounds - self.stats.pool_misses

    def __repr__(self) -> str:
        return (
            f"ShardedSession(shards={self.plan.num_shards}, "
            f"d={self.plan.dim}, pool={self.pool_level}/{self.pool_size}, "
            f"rounds={self.stats.rounds})"
        )
