"""Standalone shard-worker host: serve shard sessions over TCP.

This is the process a multi-host deployment runs next to each worker
machine's cores (``repro shard-worker --listen host:port``).  It speaks
exactly the :mod:`repro.wire` frames the in-host process backend speaks
over its pipes — the point of the versioned format — reassembled from
the byte stream by :class:`~repro.wire.stream.FrameAssembler` and
written back with vectored sends.

Execution model, per connection (mirroring ``_worker_serve`` in
:mod:`repro.service.transport`, plus what remoteness demands):

* The *receive* thread reads frames and dispatches.  :class:`Ping`
  heartbeats are echoed from here immediately, so connection
  supervision stays live while a slow round — or a slow session build —
  executes.
* A *round* thread serves round, snapshot, and session setup/teardown
  requests in arrival order — the latency-critical path, serialized per
  connection exactly like the process backend's worker main thread.
* A *refill* thread runs pool top-ups, so refills overlap rounds on the
  same connection (the session's pool lock is the only coupling).

Sessions are built *here*, from declarative
:class:`~repro.service.transport.ShardSessionSpec` entries carried by
:class:`~repro.wire.SessionSetup` frames — nothing live ever crosses
the network.  Each spec is bound to a connection-unique *slot* id, and
one connection can host slots for several cohorts at once (the
coordinator side batches all its cohorts' shards over one connection
per address); :class:`~repro.wire.SessionTeardown` releases one
cohort's slots without disturbing the rest.  All responses carry their
request's id, so out-of-order completion across the two serving threads
routes correctly on the coordinator.

A connection's sessions die with it: on EOF, error, or
:class:`~repro.wire.Shutdown`, every session the connection hosts is
closed.  Reconnecting coordinators re-pin by replaying their
``SessionSetup`` (see ``SocketTransport``), which rebuilds identical
sessions from the specs.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.exceptions import TransportError, WireError
from repro.field.arithmetic import FiniteField
from repro.wire import (
    SUPPORTED_CAPABILITIES,
    WorkerSpan,
    ErrorFrame,
    FrameAssembler,
    Ping,
    PoolSnapshot,
    RefillRequest,
    RekeyRequest,
    SessionSetup,
    SessionTeardown,
    SetupAck,
    ShardDrainRequest,
    ShardRoundRequest,
    ShardRoundResult,
    SnapshotRequest,
    Shutdown,
    decode_message,
    encode_segments,
    recv_frames,
    send_segments,
)


_HOSTNAME = socket.gethostname()


def parse_address(text: str) -> Tuple[str, int]:
    """Parse ``host:port`` (host may be empty for all-interfaces)."""
    host, sep, port = text.strip().rpartition(":")
    if not sep or not port.isdigit():
        raise TransportError(
            f"bad address {text!r}; expected host:port (e.g. 127.0.0.1:7000)"
        )
    return host or "0.0.0.0", int(port)


class _Connection:
    """One coordinator connection: its sessions, threads, and send lock."""

    def __init__(self, server: "ShardWorkerServer", sock: socket.socket,
                 peer: str):
        self.server = server
        self.sock = sock
        self.peer = peer
        self.sessions: Dict[int, object] = {}
        self._sessions_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._fields: Dict[int, FiniteField] = {}
        self._round_queue: "queue.Queue" = queue.Queue()
        self._refill_queue: "queue.Queue" = queue.Queue()
        self._closed = threading.Event()
        self._threads = [
            threading.Thread(
                target=self._recv_loop, name=f"shard-host-recv-{peer}",
                daemon=True,
            ),
            threading.Thread(
                target=self._round_loop, name=f"shard-host-round-{peer}",
                daemon=True,
            ),
            threading.Thread(
                target=self._refill_loop, name=f"shard-host-refill-{peer}",
                daemon=True,
            ),
        ]

    def start(self) -> None:
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    def _send(self, message, request_id: int) -> None:
        segments = encode_segments(message, request_id)
        with self._send_lock:
            send_segments(self.sock, segments)

    def _session(self, slot: int):
        with self._sessions_lock:
            session = self.sessions.get(slot)
        if session is None:
            raise TransportError(
                f"no session pinned at slot {slot}; send SessionSetup first"
            )
        return session

    def _snapshot_of(self, slot: int, rounds_added: int = 0) -> PoolSnapshot:
        state = self._session(slot).state_snapshot()
        return PoolSnapshot(
            shard_id=slot,
            pool_level=state["pool_level"],
            pool_size=state["pool_size"],
            rounds_added=rounds_added,
            closed=state["closed"],
            stats=state["stats"],
        )

    # ------------------------------------------------------------------
    # receive thread: dispatch; heartbeats answered here, instantly
    # ------------------------------------------------------------------
    def _recv_loop(self) -> None:
        assembler = FrameAssembler()
        try:
            while not self._closed.is_set():
                try:
                    frames = recv_frames(self.sock, assembler)
                except (EOFError, OSError):
                    return  # coordinator went away; sessions die below
                except WireError:
                    return  # stream desynchronized; nothing sane to say
                for frame in frames:
                    try:
                        if self._dispatch(frame):
                            return  # clean shutdown handshake completed
                    except (OSError, WireError):
                        return  # peer vanished mid-reply / bad frame
        finally:
            self._teardown()

    def _dispatch(self, frame: bytes) -> bool:
        """Route one frame; returns True when the connection should end."""
        request_id, message = decode_message(frame)
        if isinstance(message, Ping):
            self._send(message, request_id)
            return False
        if isinstance(message, Shutdown):
            # Contract matches the process worker: queued work (a refill
            # in flight included) completes and its responses are
            # delivered before the shutdown is acknowledged.
            self._drain_queues()
            self._close_sessions()
            try:
                self._send(Shutdown(), request_id)
            except OSError:
                pass
            return True
        if isinstance(message, RefillRequest):
            self._refill_queue.put((request_id, message))
            return False
        if isinstance(
            message,
            (ShardRoundRequest, ShardDrainRequest, RekeyRequest,
             SnapshotRequest, SessionSetup, SessionTeardown),
        ):
            # Session builds can take seconds at large pool geometries;
            # running them (like rounds) on the serving thread keeps this
            # recv thread free to echo heartbeats, so a slow re-pin is
            # never mistaken for a dead connection.  The enqueue stamp is
            # where a traced round's queue-wait clock starts: the dwell
            # between arrival here and the round thread picking it up is
            # real cross-shard head-of-line blocking.
            self._round_queue.put((request_id, message, time.time()))
            return False
        self._send(
            ErrorFrame.from_exception(
                0,
                TransportError(
                    f"worker host cannot serve {type(message).__name__}"
                ),
            ),
            request_id,
        )
        return False

    def _pin(self, slot: int, spec) -> int:
        modulus = spec.field_modulus
        gf = self._fields.setdefault(modulus, FiniteField(modulus))
        session = spec.build(gf)
        with self._sessions_lock:
            previous = self.sessions.get(slot)
            self.sessions[slot] = session
        if previous is not None:
            previous.close()  # re-pin replaces the slot's session
        return slot

    def _unpin(self, slots: List[int]) -> List[int]:
        released = []
        for slot in slots:
            with self._sessions_lock:
                session = self.sessions.pop(slot, None)
            if session is not None:
                session.close()
                released.append(slot)
        return released

    # ------------------------------------------------------------------
    # serving threads
    # ------------------------------------------------------------------
    def _round_loop(self) -> None:
        while True:
            item = self._round_queue.get()
            if item is None:
                return
            request_id, message, enqueued_at = item
            try:
                if isinstance(message, SessionSetup):
                    slots = [
                        self._pin(slot, spec)
                        for slot, spec in message.entries
                    ]
                    # Capability negotiation: grant the intersection of
                    # what the coordinator asked for and what this server
                    # was built to speak (capabilities=0 emulates an old
                    # worker — the coordinator then falls back to raw).
                    self._send(
                        SetupAck(
                            slots,
                            capabilities=(
                                message.capabilities
                                & self.server.capabilities
                            ),
                        ),
                        request_id,
                    )
                    continue
                if isinstance(message, SessionTeardown):
                    self._send(
                        SetupAck(self._unpin(message.slots)), request_id
                    )
                    continue
                if isinstance(message, SnapshotRequest):
                    self._send(self._snapshot_of(message.shard_id), request_id)
                    continue
                if isinstance(message, RekeyRequest):
                    session = self._session(message.shard_id)
                    if not hasattr(session, "rekey"):
                        raise TransportError(
                            f"slot {message.shard_id} session does not "
                            "support re-keying"
                        )
                    invalidated = session.rekey(message.num_users)
                    self._send(
                        self._snapshot_of(
                            message.shard_id, rounds_added=-invalidated
                        ),
                        request_id,
                    )
                    continue
                if isinstance(message, ShardDrainRequest):
                    session = self._session(message.shard_id)
                    if not hasattr(session, "drain"):
                        raise TransportError(
                            f"slot {message.shard_id} session does not "
                            "support drains"
                        )
                    state = session.state_snapshot()
                    stalled = bool(
                        state["supports_pool"] and state["pool_level"] == 0
                    )
                    compute_start = time.time() if message.trace_id else 0.0
                    result = session.drain(
                        message.weights,
                        message.updates,
                        set(message.recovery_dropouts),
                    )
                    worker_span = None
                    if message.trace_id:
                        worker_span = WorkerSpan(
                            trace_id=message.trace_id,
                            pid=os.getpid(),
                            host=_HOSTNAME,
                            queue_wait_seconds=max(
                                0.0, compute_start - enqueued_at
                            ),
                            compute_start_unix=compute_start,
                            compute_seconds=time.time() - compute_start,
                        )
                    after = session.state_snapshot()
                    self._send(
                        ShardRoundResult.from_result(
                            message.shard_id,
                            message.drain_id,
                            result,
                            stalled=stalled,
                            pool_level=after["pool_level"],
                            stats=after["stats"],
                            packed=message.packed,
                            worker_span=worker_span,
                        ),
                        request_id,
                    )
                    continue
                session = self._session(message.shard_id)
                state = session.state_snapshot()
                stalled = bool(
                    state["supports_pool"] and state["pool_level"] == 0
                )
                compute_start = time.time() if message.trace_id else 0.0
                result = session.run_round(
                    message.updates_dict(),
                    set(message.dropouts),
                    None,
                    **(
                        {"offline_dropouts": message.offline_dropouts}
                        if message.offline_dropouts
                        else {}
                    ),
                )
                worker_span = None
                if message.trace_id:
                    worker_span = WorkerSpan(
                        trace_id=message.trace_id,
                        pid=os.getpid(),
                        host=_HOSTNAME,
                        queue_wait_seconds=max(
                            0.0, compute_start - enqueued_at
                        ),
                        compute_start_unix=compute_start,
                        compute_seconds=time.time() - compute_start,
                    )
                after = session.state_snapshot()
                self._send(
                    ShardRoundResult.from_result(
                        message.shard_id,
                        message.round_id,
                        result,
                        stalled=stalled,
                        pool_level=after["pool_level"],
                        stats=after["stats"],
                        # mirror the request's encoding: packed replies
                        # only to peers that sent packed requests
                        packed=message.packed,
                        worker_span=worker_span,
                    ),
                    request_id,
                )
            except OSError:
                return  # peer gone mid-response
            except Exception as exc:  # noqa: BLE001 - forwarded to peer
                self._send_error(
                    getattr(message, "shard_id", 0), exc, request_id
                )

    def _refill_loop(self) -> None:
        while True:
            item = self._refill_queue.get()
            if item is None:
                return
            request_id, message = item
            try:
                session = self._session(message.shard_id)
                added = session.refill(message.rounds)
                self._send(
                    self._snapshot_of(message.shard_id, rounds_added=added),
                    request_id,
                )
            except OSError:
                return
            except Exception as exc:  # noqa: BLE001 - forwarded to peer
                self._send_error(message.shard_id, exc, request_id)

    def _send_error(self, slot: int, exc: BaseException,
                    request_id: int) -> None:
        try:
            self._send(ErrorFrame.from_exception(slot, exc), request_id)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def _drain_queues(self) -> None:
        """Stop both serving threads after their queued work completes."""
        self._round_queue.put(None)
        self._refill_queue.put(None)
        for thread in self._threads[1:]:
            if thread is not threading.current_thread():
                thread.join()

    def _close_sessions(self) -> None:
        with self._sessions_lock:
            sessions, self.sessions = dict(self.sessions), {}
        for session in sessions.values():
            session.close()

    def _teardown(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        self._round_queue.put(None)
        self._refill_queue.put(None)
        self._close_sessions()
        try:
            self.sock.close()
        except OSError:
            pass
        self.server._forget(self)

    def close(self) -> None:
        """Abrupt close from the server side (stop / restart)."""
        self._closed.set()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
        self._round_queue.put(None)
        self._refill_queue.put(None)


class ShardWorkerServer:
    """A TCP shard-worker host: ``repro shard-worker --listen host:port``.

    Tests (and single-host demos) run it in-process::

        with ShardWorkerServer("127.0.0.1", 0) as server:
            config = ServiceConfig(
                transport=TransportKind.SOCKET, connect=(server.address,),
                ...,
            )

    ``port=0`` binds an ephemeral port, published via :attr:`address`.
    ``stop()`` is abrupt by design — it models the worker being killed —
    so coordinator reconnect/re-pin paths can be exercised by stopping
    one server and starting another on the same address.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        capabilities: int = SUPPORTED_CAPABILITIES,
    ):
        # Wire capabilities this host advertises; ``capabilities=0``
        # emulates a pre-negotiation worker for mixed-version tests.
        self.capabilities = int(capabilities)
        # create_server sets SO_REUSEADDR on POSIX, so a restarted worker
        # can rebind the same port immediately (the kill/restart story).
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._connections: List[_Connection] = []
        self._lock = threading.Lock()
        self._stopped = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def connection_count(self) -> int:
        with self._lock:
            return len(self._connections)

    def start(self) -> "ShardWorkerServer":
        if self._accept_thread is not None:
            return self
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"shard-host-accept-{self.port}",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener shut down by stop()
            if self._stopped.is_set():
                # stop() raced the accept: this connection must not be
                # served by a half-dead server.
                sock.close()
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _Connection(self, sock, f"{peer[0]}:{peer[1]}")
            with self._lock:
                self._connections.append(connection)
            connection.start()

    def _forget(self, connection: _Connection) -> None:
        with self._lock:
            if connection in self._connections:
                self._connections.remove(connection)

    def stop(self) -> None:
        """Close the listener and kill every connection (idempotent)."""
        self._stopped.set()
        try:
            # close() alone does not wake a thread blocked in accept()
            # (the syscall pins the kernel socket, which would keep
            # silently accepting into the backlog); shutdown() does.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def serve_forever(self, poll_s: float = 0.2,
                      max_seconds: Optional[float] = None) -> None:
        """Block until :meth:`stop` (or ``max_seconds``); for the CLI."""
        import time

        self.start()
        deadline = None if max_seconds is None else (
            time.monotonic() + max_seconds
        )
        while not self._stopped.wait(poll_s):
            if deadline is not None and time.monotonic() >= deadline:
                self.stop()
                return

    def __enter__(self) -> "ShardWorkerServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
