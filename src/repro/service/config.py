"""Configuration for the aggregation service.

A :class:`ServiceConfig` fully describes one service deployment: how many
cohorts run concurrently, the protocol geometry of each cohort (users,
model dimension, privacy/dropout guarantees), how the model vector is
sharded, and how offline pools are sized and refilled.  The service
builds everything else (protocols, sessions, shards, cohorts, scheduler,
refiller) from this one object, so tests and benchmarks can sweep
configurations declaratively.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.exceptions import ParameterError, ReproError


class RefillMode(enum.Enum):
    """How a cohort's offline pools are topped up.

    * ``SYNC`` — no background work: a pool miss stalls the online round
      while the session refills inline (the PR 1 behaviour, kept as the
      baseline the benchmark compares against).
    * ``BACKGROUND`` — a :class:`~repro.service.refill.BackgroundRefiller`
      worker thread refills every session at its low-water mark, off the
      online path.
    """

    SYNC = "sync"
    BACKGROUND = "background"


class TransportKind(enum.Enum):
    """Where a cohort's per-shard sessions execute.

    * ``INLINE`` — sessions live in the service process and are called
      directly (:class:`~repro.service.transport.InlineTransport`); shard
      rounds and refill encodes share the GIL.
    * ``PROCESS`` — each shard's session is pinned in a long-lived
      worker process
      (:class:`~repro.service.transport.ProcessPoolTransport`) and
      spoken to in :mod:`repro.wire` frames; shard rounds scatter/gather
      across cores and refills overlap across workers.
    * ``SOCKET`` — the same frames over TCP to standalone ``repro
      shard-worker`` hosts
      (:class:`~repro.service.socket_transport.SocketTransport`), with
      heartbeat supervision and reconnect/re-pin; requires ``connect``
      addresses.  The multi-host deployment backend.
    * ``SHM`` — the process backend with the shared-memory payload
      lane: vector payloads stage in a coordinator-owned
      :class:`~repro.wire.SegmentArena` and cross the pipe as
      name+offset references, so element bytes never transit the pipe.
      Same-host only.
    """

    INLINE = "inline"
    PROCESS = "process"
    SOCKET = "socket"
    SHM = "shm"


class WireFormat(enum.Enum):
    """How vector payloads are encoded inside wire frames.

    * ``RAW`` — little-endian element bytes, the format every peer
      speaks (PR 5's only encoding).
    * ``PACKED`` — sub-word bit-packing
      (:meth:`~repro.wire.PayloadWriter.put_packed_array`): each element
      of a bounded uint array travels in ``b < 32`` bits instead of its
      dtype width.  Negotiated per connection via
      :data:`~repro.wire.CAP_PACKED_ARRAYS`; peers that do not
      acknowledge the capability keep receiving ``RAW``.
    """

    RAW = "raw"
    PACKED = "packed"


def _validate_cohort_fields(cfg) -> None:
    """Shared validation for the per-cohort knobs.

    Both :class:`ServiceConfig` (one uniform spec stamped across
    ``num_cohorts``) and :class:`CohortSpec` (one runtime cohort created
    through the control plane) carry the same geometry fields; validating
    them here keeps the failure messages — and the guarantee that a bad
    deployment fails at *config build time* — identical on both paths.
    """
    if cfg.num_users < 2:
        raise ReproError(
            f"need >= 2 users per cohort, got {cfg.num_users}"
        )
    if cfg.model_dim < 1:
        raise ReproError(f"model_dim must be >= 1, got {cfg.model_dim}")
    if cfg.num_shards < 1:
        raise ReproError(f"need >= 1 shard, got {cfg.num_shards}")
    if cfg.num_shards > cfg.model_dim:
        raise ReproError(
            f"cannot split model_dim={cfg.model_dim} into "
            f"{cfg.num_shards} non-empty shards: num_shards must be "
            f"in [1, model_dim]"
        )
    if cfg.pool_size < 1:
        raise ReproError(f"pool_size must be >= 1, got {cfg.pool_size}")
    if not 0 <= cfg.low_water < cfg.pool_size:
        raise ReproError(
            f"low_water must be in [0, pool_size), got {cfg.low_water}"
        )
    if cfg.protocol not in ("lightsecagg", "naive"):
        raise ReproError(f"unknown service protocol {cfg.protocol!r}")
    if cfg.kind not in ("sync", "buffered"):
        raise ReproError(
            f"unknown cohort kind {cfg.kind!r}; expected 'sync' or "
            "'buffered'"
        )
    if cfg.kind == "buffered":
        if cfg.protocol != "lightsecagg":
            raise ReproError(
                "buffered cohorts need protocol='lightsecagg' (pooled "
                f"mask sessions); got {cfg.protocol!r}"
            )
        buffer_size = (
            cfg.num_users if cfg.buffer_size is None else cfg.buffer_size
        )
        if not 1 <= buffer_size <= cfg.num_users:
            raise ReproError(
                f"buffer_size must be in [1, num_users={cfg.num_users}], "
                f"got {cfg.buffer_size}"
            )
    elif cfg.buffer_size is not None:
        raise ReproError("buffer_size only applies to buffered cohorts")
    if cfg.staleness_fn not in ("constant", "polynomial", "hinge"):
        raise ReproError(
            f"unknown staleness_fn {cfg.staleness_fn!r}; expected "
            "'constant', 'polynomial', or 'hinge'"
        )
    if cfg.staleness_levels < 1:
        raise ReproError(
            f"staleness_levels must be >= 1, got {cfg.staleness_levels}"
        )
    if cfg.quant_levels < 2:
        raise ReproError(
            f"quant_levels must be >= 2, got {cfg.quant_levels}"
        )
    if cfg.quant_clip is not None and cfg.quant_clip <= 0:
        raise ReproError(
            f"quant_clip must be positive, got {cfg.quant_clip}"
        )
    if cfg.protocol == "lightsecagg":
        from repro.protocols.lightsecagg.params import LSAParams

        try:
            LSAParams.from_guarantees(
                cfg.num_users,
                privacy=cfg.privacy,
                dropout_tolerance=cfg.dropout_tolerance,
            )
        except ParameterError as exc:
            raise ReproError(
                f"infeasible protocol geometry for N={cfg.num_users}, "
                f"T={cfg.privacy}, D={cfg.dropout_tolerance}: {exc}"
            ) from exc
    if not isinstance(cfg.transport, TransportKind):
        raise ReproError(
            f"transport must be a TransportKind, got {cfg.transport!r}"
        )
    if not isinstance(cfg.wire_format, WireFormat):
        raise ReproError(
            f"wire_format must be a WireFormat, got {cfg.wire_format!r}"
        )
    if cfg.num_workers is not None:
        if cfg.transport not in (
            TransportKind.PROCESS, TransportKind.SHM
        ):
            raise ReproError(
                "num_workers only applies to the process and shm "
                "transports"
            )
        if cfg.num_workers < 1:
            raise ReproError(
                f"need >= 1 worker process, got {cfg.num_workers}"
            )
    if cfg.transport is TransportKind.SOCKET:
        if not cfg.connect:
            raise ReproError(
                "the socket transport needs connect=('host:port', ...) "
                "shard-worker addresses"
            )
        from repro.service.socket_worker import parse_address

        for address in cfg.connect:
            parse_address(address)  # raises on malformed host:port
    elif cfg.connect is not None:
        raise ReproError(
            "connect addresses only apply to the socket transport"
        )


@dataclass(frozen=True)
class CohortSpec:
    """Everything needed to host *one* cohort, independent of the service.

    The runtime unit of the control plane: ``POST /cohorts`` carries one
    of these (as JSON), and :meth:`AggregationService.add_cohort` builds
    a live cohort from it — its own protocol geometry, shard plan,
    transport backend, and pool sizing — without touching any other
    cohort.  A static :class:`ServiceConfig` deployment is the special
    case of stamping :meth:`ServiceConfig.cohort_spec` ``num_cohorts``
    times.

    ``seed`` is the cohort's *base* seed; shard ``s`` of the cohort the
    service assigns id ``c`` derives its stream from ``(seed, c, s)``,
    so a cohort created at runtime with the same seed and the same
    assigned id is bit-identical to its statically-configured twin.
    """

    num_users: int = 8
    model_dim: int = 256
    num_shards: int = 1
    pool_size: int = 4
    low_water: int = 0
    dropout_tolerance: int = 1
    privacy: int = 1
    protocol: str = "lightsecagg"
    transport: TransportKind = TransportKind.INLINE
    wire_format: WireFormat = WireFormat.PACKED
    num_workers: Optional[int] = None
    connect: Optional[Tuple[str, ...]] = None
    seed: int = 0
    # Buffered-async workload knobs (kind="buffered" only).  The buffer
    # seals and drains at ``buffer_size`` submissions (defaults to
    # num_users); staleness_* select and parameterize the per-delivery
    # weighting s(tau); quant_* shape the real->field embedding of
    # submitted updates.
    kind: str = "sync"
    buffer_size: Optional[int] = None
    staleness_fn: str = "constant"
    staleness_alpha: float = 1.0
    staleness_levels: int = 1 << 6
    quant_levels: int = 1 << 16
    quant_clip: Optional[float] = None

    def __post_init__(self) -> None:
        _validate_cohort_fields(self)

    def describe(self) -> dict:
        """JSON-serializable spec summary for status endpoints."""
        return {
            "protocol": self.protocol,
            "kind": self.kind,
            "num_users": self.num_users,
            "model_dim": self.model_dim,
            "num_shards": self.num_shards,
            "pool_size": self.pool_size,
            "low_water": self.low_water,
            "privacy": self.privacy,
            "dropout_tolerance": self.dropout_tolerance,
            "transport": self.transport.value,
            "wire_format": self.wire_format.value,
            "num_workers": self.num_workers,
            "connect": list(self.connect) if self.connect else None,
            "seed": self.seed,
            "buffer_size": self.buffer_size,
            "staleness_fn": self.staleness_fn,
            "staleness_alpha": self.staleness_alpha,
            "staleness_levels": self.staleness_levels,
            "quant_levels": self.quant_levels,
            "quant_clip": self.quant_clip,
        }


@dataclass(frozen=True)
class ServiceConfig:
    """Declarative description of one aggregation-service deployment.

    Parameters
    ----------
    num_cohorts:
        Concurrent FL cohorts the service hosts; each gets its own
        protocol instance(s), sessions, and round state machine.
    num_users:
        ``N``, users per cohort.
    model_dim:
        ``d``, the full (unsharded) model-vector length.
    num_shards:
        Worker shards the model vector is partitioned across; each shard
        drives its own protocol session over its slice of the vector.
    pool_size:
        Rounds of offline material each session pools per refill.
    low_water:
        Pool level at which the background refiller tops a session up.
        Ignored in ``SYNC`` mode (inline refills trigger on empty).
    refill_mode:
        See :class:`RefillMode`.
    dropout_tolerance / privacy:
        Per-cohort LightSecAgg guarantees ``D`` and ``T``; defaults scale
        with ``N`` like :meth:`LSAParams.paper_defaults`.
    protocol:
        Protocol family; currently ``"lightsecagg"`` (pooled sessions)
        and ``"naive"`` (replay sessions, useful as an oracle) are wired.
    refill_poll_interval_s:
        Background refiller sleep between low-water polls when idle.
    transport:
        Shard execution backend, see :class:`TransportKind`.
    wire_format:
        Vector payload encoding on framed transports, see
        :class:`WireFormat`.  Defaults to ``PACKED`` — the bandwidth
        diet is on unless a deployment opts out — which degrades to raw
        per connection when the peer does not acknowledge the
        capability.  ``INLINE`` has no wire and ignores it.
    num_workers:
        Worker processes for the ``PROCESS`` and ``SHM`` transports
        (per cohort).  Defaults to one worker per shard; fewer workers
        host multiple shards each.  Meaningless (and rejected) for
        ``INLINE``.
    connect:
        ``host:port`` shard-worker addresses for the ``SOCKET``
        transport; shards are assigned round-robin across them, and all
        cohorts of this service batch their shards over one shared
        connection per address.  Required for ``SOCKET``, rejected
        elsewhere.
    seed:
        Base seed; cohort ``c`` shard ``s`` derives an independent
        deterministic stream from it.
    tracing:
        Record a :class:`~repro.obs.RoundTrace` for every round — phase
        spans across the coordinator, transports, and shard workers,
        stitched into one timeline per round.  ``False`` disables the
        whole pipeline (spans become no-ops and the tracing capability
        is not requested on socket connections, keeping wire frames
        byte-identical to pre-tracing peers).
    trace_capacity:
        Completed traces retained in the in-memory ring buffer.
    trace_slow_factor:
        A round is flagged slow when its critical-path phase exceeds
        this multiple of that phase's trailing median.
    """

    num_cohorts: int = 1
    num_users: int = 8
    model_dim: int = 256
    num_shards: int = 1
    pool_size: int = 4
    low_water: int = 0
    refill_mode: RefillMode = RefillMode.SYNC
    dropout_tolerance: int = 1
    privacy: int = 1
    protocol: str = "lightsecagg"
    refill_poll_interval_s: float = 0.001
    transport: TransportKind = TransportKind.INLINE
    wire_format: WireFormat = WireFormat.PACKED
    num_workers: Optional[int] = None
    connect: Optional[Tuple[str, ...]] = None
    seed: int = 0
    tracing: bool = True
    trace_capacity: int = 256
    trace_slow_factor: float = 5.0
    # Buffered-async workload knobs; see CohortSpec.
    kind: str = "sync"
    buffer_size: Optional[int] = None
    staleness_fn: str = "constant"
    staleness_alpha: float = 1.0
    staleness_levels: int = 1 << 6
    quant_levels: int = 1 << 16
    quant_clip: Optional[float] = None

    def __post_init__(self) -> None:
        # Everything a bad pair could break late — shard geometry inside
        # ShardPlan, protocol geometry inside LSAParams during session
        # construction, worker counts inside the transport — is validated
        # here at config build time, with the same semantics, so a
        # misconfigured deployment fails before any process or pool is
        # created.
        if self.num_cohorts < 1:
            raise ReproError(f"need >= 1 cohort, got {self.num_cohorts}")
        if self.trace_capacity < 1:
            raise ReproError(
                f"trace_capacity must be >= 1, got {self.trace_capacity}"
            )
        if self.trace_slow_factor <= 0:
            raise ReproError(
                f"trace_slow_factor must be > 0, got {self.trace_slow_factor}"
            )
        _validate_cohort_fields(self)

    def cohort_spec(self) -> CohortSpec:
        """The per-cohort spec this config stamps across its cohorts."""
        return CohortSpec(
            num_users=self.num_users,
            model_dim=self.model_dim,
            num_shards=self.num_shards,
            pool_size=self.pool_size,
            low_water=self.low_water,
            dropout_tolerance=self.dropout_tolerance,
            privacy=self.privacy,
            protocol=self.protocol,
            transport=self.transport,
            wire_format=self.wire_format,
            num_workers=self.num_workers,
            connect=self.connect,
            seed=self.seed,
            kind=self.kind,
            buffer_size=self.buffer_size,
            staleness_fn=self.staleness_fn,
            staleness_alpha=self.staleness_alpha,
            staleness_levels=self.staleness_levels,
            quant_levels=self.quant_levels,
            quant_clip=self.quant_clip,
        )
