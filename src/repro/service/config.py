"""Configuration for the aggregation service.

A :class:`ServiceConfig` fully describes one service deployment: how many
cohorts run concurrently, the protocol geometry of each cohort (users,
model dimension, privacy/dropout guarantees), how the model vector is
sharded, and how offline pools are sized and refilled.  The service
builds everything else (protocols, sessions, shards, cohorts, scheduler,
refiller) from this one object, so tests and benchmarks can sweep
configurations declaratively.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ReproError


class RefillMode(enum.Enum):
    """How a cohort's offline pools are topped up.

    * ``SYNC`` — no background work: a pool miss stalls the online round
      while the session refills inline (the PR 1 behaviour, kept as the
      baseline the benchmark compares against).
    * ``BACKGROUND`` — a :class:`~repro.service.refill.BackgroundRefiller`
      worker thread refills every session at its low-water mark, off the
      online path.
    """

    SYNC = "sync"
    BACKGROUND = "background"


@dataclass(frozen=True)
class ServiceConfig:
    """Declarative description of one aggregation-service deployment.

    Parameters
    ----------
    num_cohorts:
        Concurrent FL cohorts the service hosts; each gets its own
        protocol instance(s), sessions, and round state machine.
    num_users:
        ``N``, users per cohort.
    model_dim:
        ``d``, the full (unsharded) model-vector length.
    num_shards:
        Worker shards the model vector is partitioned across; each shard
        drives its own protocol session over its slice of the vector.
    pool_size:
        Rounds of offline material each session pools per refill.
    low_water:
        Pool level at which the background refiller tops a session up.
        Ignored in ``SYNC`` mode (inline refills trigger on empty).
    refill_mode:
        See :class:`RefillMode`.
    dropout_tolerance / privacy:
        Per-cohort LightSecAgg guarantees ``D`` and ``T``; defaults scale
        with ``N`` like :meth:`LSAParams.paper_defaults`.
    protocol:
        Protocol family; currently ``"lightsecagg"`` (pooled sessions)
        and ``"naive"`` (replay sessions, useful as an oracle) are wired.
    refill_poll_interval_s:
        Background refiller sleep between low-water polls when idle.
    seed:
        Base seed; cohort ``c`` shard ``s`` derives an independent
        deterministic stream from it.
    """

    num_cohorts: int = 1
    num_users: int = 8
    model_dim: int = 256
    num_shards: int = 1
    pool_size: int = 4
    low_water: int = 0
    refill_mode: RefillMode = RefillMode.SYNC
    dropout_tolerance: int = 1
    privacy: int = 1
    protocol: str = "lightsecagg"
    refill_poll_interval_s: float = 0.001
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_cohorts < 1:
            raise ReproError(f"need >= 1 cohort, got {self.num_cohorts}")
        if self.num_shards < 1:
            raise ReproError(f"need >= 1 shard, got {self.num_shards}")
        if self.num_shards > self.model_dim:
            raise ReproError(
                f"cannot split d={self.model_dim} into {self.num_shards} "
                "non-empty shards"
            )
        if self.pool_size < 1:
            raise ReproError(f"pool_size must be >= 1, got {self.pool_size}")
        if not 0 <= self.low_water < self.pool_size:
            raise ReproError(
                f"low_water must be in [0, pool_size), got {self.low_water}"
            )
        if self.protocol not in ("lightsecagg", "naive"):
            raise ReproError(f"unknown service protocol {self.protocol!r}")
