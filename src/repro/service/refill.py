"""Background refill pipeline for pooled protocol sessions.

The paper's amortization story says the offline phase is precomputable;
PR 1 made it poolable; this module takes it *off the online path*.  A
:class:`BackgroundRefiller` owns one worker thread that watches a set of
registered sessions and tops each one's offline pool back up to
``pool_size`` whenever it drains to its low-water mark
(:attr:`ProtocolSession.needs_refill`), so a steadily-draining consumer
never sees an empty pool and never stalls an online round on mask
encoding.

Concurrency contract (matching :class:`ProtocolSession`): one consumer
thread drains each session via ``run_round`` while this single worker
refills it; pool membership is guarded by the session's ``_pool_lock``
and whole refills are serialized by its ``_refill_lock``, so a consumer
keeps draining already-pooled rounds while a refill encodes.

Shutdown is clean by construction: :meth:`stop` wakes the worker and
joins it; a refill already in flight runs to completion (its material is
still delivered to the pool) and no new refill starts afterwards.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Tuple

from repro.exceptions import ProtocolError, TransportError
from repro.protocols.base import ProtocolSession
from repro.service.metrics import ServiceMetrics


class BackgroundRefiller:
    """Worker thread that keeps registered sessions' pools above low water.

    Parameters
    ----------
    poll_interval_s:
        Fallback polling period while idle.  Consumers should still call
        :meth:`notify` after draining a pool so refills start promptly;
        the poll is a safety net, not the main wake-up mechanism.
    metrics:
        Optional :class:`ServiceMetrics` sink for per-refill accounting.
    """

    def __init__(
        self,
        poll_interval_s: float = 0.001,
        metrics: Optional[ServiceMetrics] = None,
    ):
        self.poll_interval_s = float(poll_interval_s)
        self.metrics = metrics
        self.refills = 0
        self.rounds_refilled = 0
        self._sessions: List[
            Tuple[ProtocolSession, int, Optional[Callable[[], int]]]
        ] = []
        self._cond = threading.Condition()
        self._stopping = False
        self._in_flight = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def register(
        self,
        session: ProtocolSession,
        cohort_id: int = 0,
        depth_fn: Optional[Callable[[], int]] = None,
    ) -> None:
        """Watch ``session``; refill it whenever it reports low water.

        Sessions without a precomputable pool (``supports_pool`` False)
        are accepted but never refilled — their ``needs_refill`` is
        always False — so callers can register uniformly.  ``depth_fn``
        overrides the pool depth reported to metrics after a refill;
        sharded cohorts pass their *logical* (min-over-shards) depth so
        the metrics series stays one consistent quantity even though the
        refiller tops shards up individually.
        """
        with self._cond:
            self._sessions.append((session, cohort_id, depth_fn))
            self._cond.notify_all()

    def unregister(self, cohort_id: int) -> int:
        """Stop watching every session registered under ``cohort_id``.

        Returns the number of entries dropped.  The runtime-removal
        counterpart of :meth:`register`: a cohort retired by the control
        plane must not leave dead entries pinning its (soon closed)
        sessions in the watch list.  A refill already in flight for one
        of the dropped sessions runs to completion — the worker operates
        on a snapshot — and lands harmlessly (closed sessions absorb the
        attempt as a no-op error the worker tolerates).
        """
        with self._cond:
            kept = [e for e in self._sessions if e[1] != cohort_id]
            removed = len(self._sessions) - len(kept)
            self._sessions = kept
            self._cond.notify_all()
        return removed

    def start(self) -> "BackgroundRefiller":
        """Start the worker thread (idempotent while one is running).

        The single-worker contract is enforced here: if a previous
        :meth:`stop` timed out and its worker is still draining, starting
        a second worker beside it would let two threads refill the same
        session concurrently, so the call fails loudly instead.  A worker
        that has already exited (timed-out stop that later completed) is
        reaped and replaced.
        """
        with self._cond:
            if self._thread is not None:
                if self._thread.is_alive():
                    if self._stopping:
                        raise ProtocolError(
                            "refiller worker is still stopping (a previous "
                            "stop() timed out); retry stop() before start()"
                        )
                    return self
                self._thread = None  # previous worker finished; reap it
            self._stopping = False
            self._thread = threading.Thread(
                target=self._run, name="offline-refiller", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = None) -> bool:
        """Stop and join the worker; a refill in flight completes first.

        Returns True when the worker is fully stopped (or was never
        running).  When ``timeout`` elapses while a refill is still
        draining, the worker thread is *kept* — ``running`` stays True,
        ``start()`` refuses to spawn a second worker beside it, and a
        later ``stop()`` can finish the join.
        """
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
            thread = self._thread
        if thread is None:
            return True
        thread.join(timeout)
        if thread.is_alive():
            return False  # join timed out; keep _thread so `running` is honest
        with self._cond:
            if self._thread is thread:
                self._thread = None
        return True

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def __enter__(self) -> "BackgroundRefiller":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # consumer interface
    # ------------------------------------------------------------------
    def notify(self) -> None:
        """Wake the worker (call after draining a pool round)."""
        with self._cond:
            self._cond.notify_all()

    def wait_until_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no registered session needs a refill.

        Returns True when idle was reached, False on timeout.  Used by
        tests and benchmarks to establish the steady state in which a
        consumer's think time exceeds refill time — the regime where the
        zero-stall guarantee holds.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                busy = self._in_flight or any(
                    s.needs_refill for s, _, _ in self._sessions
                )
                if not busy:
                    return True
                if self._stopping:
                    return False
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(
                    self.poll_interval_s
                    if remaining is None
                    else min(self.poll_interval_s, remaining)
                )

    # ------------------------------------------------------------------
    # worker
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                if self._stopping:
                    return
                needy = [
                    entry for entry in self._sessions if entry[0].needs_refill
                ]
                if not needy:
                    self._cond.wait(self.poll_interval_s)
                    continue
                self._in_flight = True
            try:
                self._refill_batch(needy)
            finally:
                with self._cond:
                    self._in_flight = False
                    self._cond.notify_all()

    def _refill_batch(self, needy) -> None:
        """Refill one batch of needy sessions, overlapping where possible.

        Sessions exposing the two-phase ``refill_begin`` / ``refill_join``
        surface (process-transport shard handles) are *scattered* first —
        every worker starts encoding before any result is gathered — so
        top-ups for different shards run concurrently on the workers'
        cores.  Plain in-process sessions refill synchronously, one at a
        time, exactly as before (there is only this one worker thread to
        run them on).  A stop request lets refills already started run to
        completion (begun tickets are still joined; their material lands
        in the pools) but starts no new ones.
        """
        tickets = []
        for entry in needy:
            with self._cond:
                if self._stopping:
                    break  # finish cleanly: skip refills not yet started
            session = entry[0]
            if hasattr(session, "refill_begin"):
                try:
                    tickets.append((entry, session.refill_begin()))
                except (ProtocolError, TransportError):
                    continue  # closed between the low-water check and now
            else:
                self._refill_one(*entry)
        for (session, cohort_id, depth_fn), ticket in tickets:
            try:
                added = session.refill_join(ticket)
            except (ProtocolError, TransportError):
                continue
            self._account(session, cohort_id, depth_fn, added)

    def _refill_one(
        self,
        session: ProtocolSession,
        cohort_id: int,
        depth_fn: Optional[Callable[[], int]] = None,
    ) -> None:
        try:
            added = session.refill()
        except ProtocolError:
            # The consumer closed the session between the low-water check
            # and the refill; nothing to top up.
            return
        self._account(session, cohort_id, depth_fn, added)

    def _account(
        self,
        session: ProtocolSession,
        cohort_id: int,
        depth_fn: Optional[Callable[[], int]],
        added: int,
    ) -> None:
        if added > 0:
            self.refills += 1
            self.rounds_refilled += added
            if self.metrics is not None:
                depth = depth_fn() if depth_fn is not None else session.pool_level
                self.metrics.record_refill(cohort_id, added, depth)
