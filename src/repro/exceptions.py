"""Exception hierarchy for the LightSecAgg reproduction library.

All errors raised by :mod:`repro` derive from :class:`ReproError`, so callers
can catch library failures with a single ``except`` clause while still
distinguishing configuration mistakes from protocol-level failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class FieldError(ReproError):
    """Invalid finite-field operation (bad modulus, non-invertible element)."""


class SingularMatrixError(FieldError):
    """A matrix over GF(q) was singular where an invertible one was required."""


class CodingError(ReproError):
    """MDS / secret-sharing encode or decode failure."""


class NotEnoughSharesError(CodingError):
    """Fewer shares were supplied than the reconstruction threshold."""


class ProtocolError(ReproError):
    """A secure-aggregation protocol invariant was violated at runtime."""


class ParameterError(ProtocolError):
    """Invalid protocol parameters (e.g. T + D >= N, or U outside (T, N-D])."""


class DropoutError(ProtocolError):
    """Too many users dropped for the configured resiliency guarantee."""


class WireError(ReproError):
    """Malformed, truncated, or version-incompatible wire frame."""


class TransportError(ReproError):
    """Shard transport failure (dead worker, shutdown race, bad routing)."""


class QuantizationError(ReproError):
    """Quantizer misuse (overflow risk, invalid level count, ...)."""


class SimulationError(ReproError):
    """Invalid systems-simulation configuration."""
