"""Message-driven LightSecAgg round over the discrete-event core.

Reproduces the paper's Fig. 4 software architecture in simulation: a
``Server Manager`` with a masked-model cache, ``Client Manager``s that run
*two parallel tracks* — model training and the offline mask phase — and a
network whose links serialize transfers.  Protocol messages carry the
*real* field payloads, so the runtime validates both worlds at once:

* **correctness** — the aggregate the server decodes equals the plain sum;
* **systems behaviour** — overlap savings (Fig. 5), straggler resilience
  via the U-th-response order statistic, and per-phase spans emerge from
  the event schedule rather than from closed-form charging.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set

import numpy as np

from repro.coding.mask_encoding import MaskEncoder
from repro.exceptions import DropoutError, SimulationError
from repro.field.arithmetic import FiniteField
from repro.protocols.base import SessionStats
from repro.protocols.lightsecagg.params import LSAParams
from repro.protocols.lightsecagg.session import (
    OfflineMaterial,
    precompute_offline_pool,
)
from repro.simulation.heterogeneous import UserProfile
from repro.simulation.machine import MachineProfile, PAPER_TESTBED
from repro.simulation.network import BandwidthProfile, TESTBED_320
from repro.system.events import EventSimulator, SerialResource


@dataclass
class PhaseSpans:
    """Start/end of each phase for one client (simulated seconds)."""

    offline_done: float = 0.0
    training_done: float = 0.0
    upload_done: float = 0.0
    recovery_response: Optional[float] = None


@dataclass
class SystemRoundResult:
    """Outcome of one event-driven round."""

    aggregate: np.ndarray
    survivors: List[int]
    finish_time: float
    upload_complete: float
    recovery_complete: float
    spans: Dict[int, PhaseSpans] = field(default_factory=dict)
    responders: List[int] = field(default_factory=list)
    offline_pooled: bool = False  # True when served from a session's pool


class SystemRuntime:
    """One LightSecAgg round as interacting client/server state machines."""

    def __init__(
        self,
        gf: FiniteField,
        params: LSAParams,
        model_dim: int,
        fleet: Optional[List[UserProfile]] = None,
        machine: MachineProfile = PAPER_TESTBED,
        bandwidth: BandwidthProfile = TESTBED_320,
        training_time: float = 0.0,
        overlap: bool = True,
    ):
        self.gf = gf
        self.params = params
        self.model_dim = model_dim
        n = params.num_users
        self.fleet = fleet if fleet is not None else [UserProfile()] * n
        if len(self.fleet) != n:
            raise SimulationError("fleet size must equal N")
        self.machine = machine
        self.bandwidth = bandwidth
        self.training_time = training_time
        self.overlap = overlap
        self.encoder = MaskEncoder(
            gf,
            num_users=n,
            target_survivors=params.target_survivors,
            privacy=params.privacy,
            model_dim=model_dim,
        )

    # ------------------------------------------------------------------
    def _transfer_time(self, elements: int, user: int) -> float:
        return self.bandwidth.seconds(elements) / self.fleet[user].bandwidth_scale

    def _compute_time(self, ops: int, user: int) -> float:
        return self.machine.field_time(ops) / self.fleet[user].compute_scale

    # ------------------------------------------------------------------
    def session(
        self,
        pool_size: int = 4,
        rng: Optional[np.random.Generator] = None,
        low_water: int = 0,
    ) -> "SystemSession":
        """Open a multi-round session with a background offline pool."""
        return SystemSession(self, pool_size=pool_size, rng=rng,
                             low_water=low_water)

    def run_round(
        self,
        updates: Dict[int, np.ndarray],
        dropouts: Optional[Set[int]] = None,
        rng: Optional[np.random.Generator] = None,
        offline_material: Optional[OfflineMaterial] = None,
    ) -> SystemRoundResult:
        """Run one event-driven round.

        When ``offline_material`` is supplied (a session pool hit), masks
        and coded shares are taken as already computed and distributed by a
        background refill: every client starts the round with its offline
        track complete, so the critical path is training, upload, and
        recovery only.
        """
        params = self.params
        n = params.num_users
        u = params.target_survivors
        dropouts = set(dropouts or set())
        rng = rng if rng is not None else np.random.default_rng()
        survivors = sorted(set(range(n)) - dropouts)
        if len(survivors) < u:
            raise DropoutError(f"only {len(survivors)} survivors, need U={u}")
        share_dim = self.encoder.share_dim

        sim = EventSimulator()
        spans = {i: PhaseSpans() for i in range(n)}
        masks: Dict[int, np.ndarray] = {}
        held_shares: Dict[int, Dict[int, np.ndarray]] = {j: {} for j in range(n)}
        masked_updates: Dict[int, np.ndarray] = {}
        agg_share_arrivals: List[tuple] = []  # (time, user, vector)
        state = {
            "uploads_seen": 0,
            "upload_complete": 0.0,
            "recovery_complete": 0.0,
            "aggregate": None,
            "responders": [],
            "announced": False,
            "responding": set(),
        }
        waiting_responders: Set[int] = set()
        cpu = {i: SerialResource(f"cpu{i}") for i in range(n)}
        uplink = {i: SerialResource(f"up{i}") for i in range(n)}

        if offline_material is not None:
            # Shares were distributed during a background refill: every
            # holder starts the round with the full set in hand.
            for i in range(n):
                masks[i] = offline_material.masks[i]
                for j in range(n):
                    held_shares[j][i] = offline_material.coded[i, j]

        # ---------------- client side -------------------------------
        def start_client(i: int):
            if offline_material is not None:
                # Pool hit — Track A already ran in the background; only
                # training gates the upload.
                spans[i].offline_done = 0.0
                train_dur = self.training_time / self.fleet[i].compute_scale

                def trained():
                    spans[i].training_done = sim.now
                    maybe_upload(i)

                if self.training_time > 0:
                    sim.schedule(train_dur, trained)
                else:
                    sim.schedule(0.0, lambda: maybe_upload(i))
                return
            # Track A: offline phase — draw mask, encode, push shares.
            z = self.encoder.generate_mask(rng)
            masks[i] = z
            encode_ops = int(
                n * np.log2(max(n, 2)) * share_dim
            )  # FFT-style encoding cost (Sec. 5.2)

            def offline_encoded(t_enc: float):
                coded = self.encoder.encode(z, rng)
                send_time = self._transfer_time((n - 1) * share_dim, i)
                arrival = t_enc + send_time  # duplex stream to all peers

                def delivered():
                    for j in range(n):
                        held_shares[j][i] = coded[j]
                    spans[i].offline_done = sim.now
                    maybe_upload(i)
                    # A late share delivery may unblock recovery responders.
                    for j in list(waiting_responders):
                        try_respond(j)

                sim.schedule(arrival, delivered)

            # Track B: local training (a separate process in the paper's
            # design, so it does not contend with Track A's CPU when
            # overlap is on).
            train_dur = self.training_time / self.fleet[i].compute_scale

            if self.overlap:
                cpu[i].acquire(sim, 0.0, self._compute_time(encode_ops, i),
                               offline_encoded)

                def trained(t_done: float):
                    spans[i].training_done = t_done
                    maybe_upload(i)

                sim.schedule(train_dur, lambda: trained(sim.now))
            else:
                # Serial: offline phase first, then training on the same track.
                def offline_then_train(t_enc: float):
                    offline_encoded(t_enc)

                    def trained(t_done: float):
                        spans[i].training_done = t_done
                        maybe_upload(i)

                    cpu[i].acquire(sim, t_enc, train_dur, trained)

                cpu[i].acquire(sim, 0.0, self._compute_time(encode_ops, i),
                               offline_then_train)

        def maybe_upload(i: int):
            # Upload requires local training to be done and the mask z_i to
            # exist; it does NOT wait for share *distribution* (the paper's
            # masking step needs only z_i, and the share exchange continues
            # in the background on the send queue).
            if i in masked_updates:
                return
            if self.training_time > 0 and spans[i].training_done == 0.0:
                return
            if i not in masks:
                return
            masked = self.gf.add(self.gf.array(updates[i]), masks[i])
            masked_updates[i] = masked

            def uploaded(t_up: float):
                spans[i].upload_done = t_up
                server_got_upload(i, t_up)

            uplink[i].acquire(
                sim, sim.now, self._transfer_time(self.model_dim, i), uploaded
            )

        # ---------------- server side -------------------------------
        def server_got_upload(i: int, when: float):
            if i in dropouts:
                return  # dropped after upload: server discards it
            state["uploads_seen"] += 1
            if state["uploads_seen"] == len(survivors):
                state["upload_complete"] = when
                announce_survivors(when)

        def announce_survivors(when: float):
            state["announced"] = True
            for j in survivors:
                sim.schedule(when, lambda j=j: try_respond(j))

        def try_respond(j: int):
            """Respond once this user holds shares from every survivor;
            otherwise wait for the remaining offline deliveries."""
            if not state["announced"] or spans[j].recovery_response is not None:
                return
            if any(i not in held_shares[j] for i in survivors):
                waiting_responders.add(j)
                return
            waiting_responders.discard(j)
            if j in state["responding"]:
                return
            state["responding"].add(j)
            respond(j)

        def respond(j: int):
            agg_ops = len(survivors) * share_dim

            def aggregated(t_agg: float):
                vec = self.encoder.aggregate_shares(
                    {i: held_shares[j][i] for i in survivors}
                )

                def sent(t_sent: float):
                    spans[j].recovery_response = t_sent
                    agg_share_arrivals.append((t_sent, j, vec))
                    if len(agg_share_arrivals) == u:
                        decode(t_sent)

                uplink[j].acquire(
                    sim, t_agg, self._transfer_time(share_dim, j), sent
                )

            cpu[j].acquire(sim, sim.now, self._compute_time(agg_ops, j),
                           aggregated)

        def decode(when: float):
            decode_dur = self.machine.field_time(
                u * self.model_dim + u * u
            )

            def decoded():
                arrivals = sorted(agg_share_arrivals)[:u]
                state["responders"] = [user for _, user, _ in arrivals]
                agg_mask = self.encoder.decode_aggregate(
                    {user: vec for _, user, vec in arrivals}
                )
                total = self.gf.zeros(self.model_dim)
                for i in survivors:
                    total = self.gf.add(total, masked_updates[i])
                state["aggregate"] = self.gf.sub(total, agg_mask)
                state["recovery_complete"] = sim.now

            sim.schedule(when + decode_dur, decoded)

        for i in range(n):
            start_client(i)
        finish = sim.run()

        if state["aggregate"] is None:
            raise SimulationError("round did not complete")
        return SystemRoundResult(
            aggregate=state["aggregate"],
            survivors=survivors,
            finish_time=finish,
            upload_complete=state["upload_complete"],
            recovery_complete=state["recovery_complete"],
            spans=spans,
            responders=state["responders"],
            offline_pooled=offline_material is not None,
        )


class SystemSession:
    """Multi-round driver over :class:`SystemRuntime` with an offline pool.

    The session's refill plays the role of the paper's pipelined offline
    phase: masks for ``K`` future rounds are encoded in one batched matmul
    and their shares distributed while no round is on the critical path.
    The simulated cost of that background work is accumulated in
    :attr:`background_seconds` (clients refill in parallel, so each refill
    contributes the *maximum* per-user encode+distribute span), and pooled
    rounds then start with the offline track already complete.
    """

    def __init__(
        self,
        runtime: SystemRuntime,
        pool_size: int = 4,
        rng: Optional[np.random.Generator] = None,
        low_water: int = 0,
    ):
        if pool_size < 1:
            raise SimulationError(f"pool_size must be >= 1, got {pool_size}")
        if not 0 <= low_water < pool_size:
            raise SimulationError(
                f"low_water must be in [0, pool_size), got {low_water}"
            )
        self.runtime = runtime
        self.pool_size = int(pool_size)
        self.low_water = int(low_water)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.stats = SessionStats()
        self.background_seconds = 0.0
        self._pool: Deque[OfflineMaterial] = deque()

    @property
    def pool_level(self) -> int:
        return len(self._pool)

    @property
    def supports_pool(self) -> bool:
        return True

    @property
    def needs_refill(self) -> bool:
        """True once the pool has drained to the low-water mark."""
        return len(self._pool) < self.pool_size and (
            len(self._pool) <= self.low_water
        )

    def refill(self, rounds: Optional[int] = None) -> int:
        """Precompute ``rounds`` rounds of offline material in background."""
        if rounds is None:
            rounds = self.pool_size - len(self._pool)
        if rounds <= 0:
            return 0
        rt = self.runtime
        n = rt.params.num_users
        share_dim = rt.encoder.share_dim
        masks, coded = precompute_offline_pool(rt.encoder, rounds, self.rng)
        for k in range(rounds):
            self._pool.append(OfflineMaterial(masks[k], coded[k]))

        encode_ops = int(rounds * n * np.log2(max(n, 2)) * share_dim)
        span = max(
            rt._compute_time(encode_ops, i)
            + rt._transfer_time(rounds * (n - 1) * share_dim, i)
            for i in range(n)
        )
        self.background_seconds += span
        self.stats.refills += 1
        self.stats.precomputed_rounds += rounds
        self.stats.refill_seconds += span
        return rounds

    def run_round(
        self,
        updates: Dict[int, np.ndarray],
        dropouts: Optional[Set[int]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> SystemRoundResult:
        """One online round, served from the pool when possible.

        A pool miss is *not* free: the round runs with the offline phase
        on its critical path, exactly like a bare ``SystemRuntime`` round
        (``offline_pooled`` stays False), while a background refill is
        kicked off so subsequent rounds hit the pool.

        With ``low_water > 0`` the session runs the interleaved
        event-loop track of the paper's pipelined design: whenever a
        round leaves the pool at or below the low-water mark, the next
        refill is charged to the *background* span immediately (the
        offline encode proceeds while clients train for the next round),
        so a steadily-draining session never misses after warm-up.
        """
        if self._pool:
            self.stats.pool_hits += 1
            material = self._pool.popleft()
            result = self.runtime.run_round(
                updates, dropouts, rng, offline_material=material
            )
        else:
            self.stats.pool_misses += 1
            result = self.runtime.run_round(updates, dropouts, rng)
            self.refill()
        if self.low_water > 0 and self.needs_refill:
            self.refill()
        self.stats.rounds += 1
        return result
