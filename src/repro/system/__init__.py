"""Event-driven system runtime reproducing the paper's Fig. 4 architecture."""

from repro.system.events import EventSimulator, SerialResource
from repro.system.runtime import (
    PhaseSpans,
    SystemRoundResult,
    SystemRuntime,
    SystemSession,
)

__all__ = [
    "EventSimulator",
    "SerialResource",
    "SystemRuntime",
    "SystemSession",
    "SystemRoundResult",
    "PhaseSpans",
]
