"""Discrete-event core for the system runtime.

A minimal event simulator: callbacks scheduled at simulated times, run in
time order.  Entities (clients, server) schedule their own work — compute
tasks occupy an entity's serial compute resource, messages occupy links —
so phase overlap (e.g. training in parallel with mask encoding, the
paper's Sec. 6 design) emerges from how tasks are scheduled rather than
from closed-form assumptions.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.exceptions import SimulationError


class EventSimulator:
    """Priority-queue event loop over simulated seconds."""

    def __init__(self):
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.now: float = 0.0
        self._running = False

    def schedule(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at simulated time ``when`` (>= now)."""
        if when < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule in the past: {when} < {self.now}"
            )
        heapq.heappush(self._queue, (when, next(self._counter), callback))

    def run(self, until: Optional[float] = None) -> float:
        """Drain the queue (optionally up to ``until``); returns end time."""
        self._running = True
        while self._queue:
            when, _, callback = self._queue[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._queue)
            self.now = when
            callback()
        self._running = False
        return self.now


class SerialResource:
    """A resource that serializes work (one CPU core, one link direction).

    ``acquire(sim, start, duration, on_done)`` queues the work: it begins
    at ``max(start, resource free time)`` and calls ``on_done(end_time)``.
    """

    def __init__(self, name: str = "resource"):
        self.name = name
        self.busy_until: float = 0.0
        self.total_busy: float = 0.0

    def acquire(
        self,
        sim: EventSimulator,
        start: float,
        duration: float,
        on_done: Callable[[float], None],
    ) -> float:
        if duration < 0:
            raise SimulationError("duration must be non-negative")
        begin = max(start, self.busy_until)
        end = begin + duration
        self.busy_until = end
        self.total_busy += duration
        sim.schedule(end, lambda: on_done(end))
        return end
