"""LightSecAgg reproduction (MLSys 2022).

A full Python implementation of the LightSecAgg secure-aggregation
protocol and everything around it: the SecAgg / SecAgg+ baselines, the
finite-field / coding / crypto substrates they stand on, a numpy FL stack
(synchronous and buffered-asynchronous), and a systems simulator that
regenerates the paper's tables and figures.

Quickstart::

    import numpy as np
    from repro import FiniteField, LightSecAgg, LSAParams

    gf = FiniteField()
    params = LSAParams.from_guarantees(num_users=10, privacy=3,
                                       dropout_tolerance=3)
    protocol = LightSecAgg(gf, params, model_dim=1000)
    updates = {i: gf.random(1000) for i in range(10)}
    result = protocol.run_round(updates, dropouts={2, 5})
    # result.aggregate == exact field-sum of the surviving users' updates
"""

from repro.field import DEFAULT_PRIME, PAPER_PRIME, FiniteField
from repro.coding import MaskEncoder, MDSCode, ShamirSecretSharing
from repro.crypto import PRG, DiffieHellman
from repro.exceptions import (
    CodingError,
    DropoutError,
    FieldError,
    ParameterError,
    ProtocolError,
    QuantizationError,
    ReproError,
    SimulationError,
)
from repro.protocols import (
    LightSecAgg,
    LSAParams,
    NaiveAggregation,
    SecAgg,
    SecAggPlus,
    sample_dropouts,
)
from repro.quantization import ModelQuantizer, QuantizationConfig
from repro.version import __version__

__all__ = [
    "__version__",
    "FiniteField",
    "DEFAULT_PRIME",
    "PAPER_PRIME",
    "MDSCode",
    "MaskEncoder",
    "ShamirSecretSharing",
    "PRG",
    "DiffieHellman",
    "LightSecAgg",
    "LSAParams",
    "SecAgg",
    "SecAggPlus",
    "NaiveAggregation",
    "sample_dropouts",
    "ModelQuantizer",
    "QuantizationConfig",
    "ReproError",
    "FieldError",
    "CodingError",
    "ProtocolError",
    "ParameterError",
    "DropoutError",
    "QuantizationError",
    "SimulationError",
]
