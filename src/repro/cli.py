"""Command-line interface: run rounds and regenerate the paper's tables.

Usage (also via ``python -m repro``)::

    python -m repro round --protocol lightsecagg -n 12 -d 1000 --drop 2
    python -m repro session --protocol lightsecagg -n 16 -d 2000 --rounds 10
    python -m repro service -n 8 -d 4096 --cohorts 4 --shards 2 \
        --refill background --low-water 2 --rounds 20 --json
    python -m repro service -n 16 -d 65536 --shards 4 --transport process \
        --workers 4 --refill background --low-water 2 --rounds 20
    python -m repro shard-worker --listen 0.0.0.0:7000
    python -m repro service -n 16 -d 65536 --shards 4 --transport socket \
        --connect host-a:7000,host-b:7000 --refill background --rounds 20
    python -m repro serve --listen 127.0.0.1:8080   # HTTP control plane
    python -m repro trace http://127.0.0.1:8080/cohorts/0/traces
    python -m repro simulate --protocol secagg -n 200 -d 1206590 -p 0.3
    python -m repro gains -n 200 -p 0.1
    python -m repro breakdown -n 200
    python -m repro complexity -n 200 -d 1206590
    python -m repro storage -n 20
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from repro.field import FiniteField
from repro.fl.models.zoo import PAPER_MODEL_SIZES
from repro.protocols import (
    EncryptedLightSecAgg,
    LightSecAgg,
    LSAParams,
    NaiveAggregation,
    SecAgg,
    SecAggPlus,
    ZhaoSunAggregation,
)
from repro.simulation import (
    SimulationConfig,
    TRAINING_TIMES,
    complexity_table,
    compute_gains,
    paper_operating_point,
    simulate,
)
from repro.simulation.costmodel import PROTOCOLS, ROWS
from repro.simulation.storage import compare_storage


PROTOCOL_CHOICES = [
    "lightsecagg", "lightsecagg-encrypted", "secagg", "secagg+", "naive",
    "zhao-sun",
]


def _build_protocol(name: str, gf: FiniteField, n: int, d: int, seed: int):
    if name == "lightsecagg":
        return LightSecAgg(gf, LSAParams.paper_defaults(n, 0.1), d)
    if name == "lightsecagg-encrypted":
        return EncryptedLightSecAgg(gf, LSAParams.paper_defaults(n, 0.1), d)
    if name == "secagg":
        return SecAgg(gf, n, d)
    if name == "secagg+":
        return SecAggPlus(gf, n, d, graph_seed=seed)
    if name == "naive":
        return NaiveAggregation(gf, n, d)
    if name == "zhao-sun":
        if n > 16:
            raise SystemExit(
                "zhao-sun enumerates all surviving sets; use -n <= 16 "
                "(the exponential blow-up is the point of Table 6)"
            )
        return ZhaoSunAggregation(
            gf, LSAParams.from_guarantees(n, max(1, n // 4), max(1, n // 4)), d
        )
    raise SystemExit(f"unknown protocol {name!r}")


def cmd_round(args: argparse.Namespace) -> int:
    gf = FiniteField()
    rng = np.random.default_rng(args.seed)
    proto = _build_protocol(args.protocol, gf, args.num_users, args.dim, args.seed)
    updates = {i: gf.random(args.dim, rng) for i in range(args.num_users)}
    dropouts = set(
        rng.choice(args.num_users, size=args.drop, replace=False).tolist()
    ) if args.drop else set()
    result = proto.run_round(updates, dropouts, rng)
    expected = proto.expected_aggregate(updates, result.survivors)
    ok = np.array_equal(result.aggregate, expected)
    print(f"protocol={args.protocol} N={args.num_users} d={args.dim} "
          f"dropped={sorted(dropouts)}")
    print(f"aggregate correct: {ok}")
    for phase in ("offline", "upload", "recovery"):
        print(f"  {phase:9s}: {result.transcript.elements(phase=phase):>12d} "
              f"field elements")
    print(f"  server PRG elements: {result.metrics.server_prg_elements}")
    return 0 if ok else 1


def cmd_session(args: argparse.Namespace) -> int:
    """Multi-round session: amortized online latency vs the one-shot path."""
    gf = FiniteField()
    rng = np.random.default_rng(args.seed)
    proto = _build_protocol(args.protocol, gf, args.num_users, args.dim, args.seed)
    updates = {i: gf.random(args.dim, rng) for i in range(args.num_users)}
    dropouts = set(
        rng.choice(args.num_users, size=args.drop, replace=False).tolist()
    ) if args.drop else set()

    pool = args.pool if args.pool is not None else args.rounds
    session = proto.session(pool_size=pool, rng=np.random.default_rng(args.seed))
    session.refill()
    online = 0.0
    ok = True
    for _ in range(args.rounds):
        t0 = time.perf_counter()
        result = session.run_round(updates, set(dropouts), rng)
        online += time.perf_counter() - t0
        expected = proto.expected_aggregate(updates, result.survivors)
        ok = ok and np.array_equal(result.aggregate, expected)

    oneshot = 0.0
    for r in range(args.rounds):
        t0 = time.perf_counter()
        proto.run_round(updates, set(dropouts), np.random.default_rng(r))
        oneshot += time.perf_counter() - t0

    stats = session.stats
    print(f"protocol={args.protocol} N={args.num_users} d={args.dim} "
          f"rounds={args.rounds} pool={pool} dropped={sorted(dropouts)}")
    print(f"aggregates correct: {ok}")
    print(f"  session online  : {1e3 * online / args.rounds:9.3f} ms/round "
          f"(pool hits {stats.pool_hits}, misses {stats.pool_misses})")
    print(f"  one-shot        : {1e3 * oneshot / args.rounds:9.3f} ms/round")
    print(f"  offline refill  : {1e3 * stats.refill_seconds:9.3f} ms total "
          f"({stats.refills} refills, {stats.precomputed_rounds} rounds)")
    if online > 0:
        print(f"  online speedup  : {oneshot / online:9.2f}x")
    return 0 if ok else 1


def cmd_service(args: argparse.Namespace) -> int:
    """Run the sharded aggregation service and report its metrics."""
    import json

    from repro.service import (
        AggregationService,
        RefillMode,
        ServiceConfig,
        TransportKind,
        WireFormat,
    )

    config = ServiceConfig(
        num_cohorts=args.cohorts,
        num_users=args.num_users,
        model_dim=args.dim,
        num_shards=args.shards,
        pool_size=args.pool,
        low_water=args.low_water,
        refill_mode=RefillMode(args.refill),
        dropout_tolerance=max(1, args.num_users // 8),
        privacy=max(1, args.num_users // 8),
        transport=TransportKind(args.transport),
        wire_format=WireFormat(args.wire_format),
        num_workers=args.workers,
        connect=(
            tuple(a.strip() for a in args.connect.split(","))
            if args.connect
            else None
        ),
        seed=args.seed,
    )
    with AggregationService(config) as svc:
        svc.run_synthetic(
            rounds=args.rounds, dropout_rate=args.dropout,
            rng=np.random.default_rng(args.seed), settle=args.settle,
        )
        snapshot = svc.status()

    if args.json:
        # The full snapshot, including every cohort's pool-depth series.
        print(json.dumps(snapshot, indent=2))
        return 0

    metrics = snapshot["metrics"]
    print(f"service: {args.cohorts} cohorts x N={args.num_users} "
          f"d={args.dim} shards={args.shards} pool={args.pool} "
          f"low_water={args.low_water} refill={args.refill} "
          f"transport={args.transport} wire_format={args.wire_format}")
    print(f"  rounds completed : {metrics['total_rounds']}")
    print(f"  online stalls    : {metrics['total_stalls']}")
    for kind, t in metrics.get("transports", {}).items():
        print(f"  transport {kind:7s}: {t['rounds']} rounds, "
              f"{1e3 * t['mean_round_seconds']:.2f} ms/round scatter-gather, "
              f"{t['bytes_sent'] + t['bytes_received']} wire bytes, "
              f"{t.get('shm_bytes', 0)} shm bytes, "
              f"{t['shard_stalls']} shard stalls, "
              f"{t.get('reconnects', 0)} reconnects")
    if snapshot["refiller"] is not None:
        ref = snapshot["refiller"]
        print(f"  background refills: {ref['refills']} "
              f"({ref['rounds_refilled']} rounds of material)")
    statuses = {c["cohort_id"]: c for c in snapshot.get("cohorts", [])}
    for cid, m in metrics["cohorts"].items():
        line = (f"  cohort {cid}: {m['rounds']} rounds, {m['stalls']} stalls, "
                f"{m['rounds_per_second']:.1f} rounds/s online")
        status = statuses.get(int(cid), {})
        if status.get("kind", "sync") != "sync":
            line += (f" [{status['kind']}: buffer "
                     f"{status.get('buffer_fill', 0)}/"
                     f"{status.get('buffer_capacity', 0)}, "
                     f"{status.get('drains', 0)} drains]")
        print(line)
    return 0


def _install_signal_handlers(callback) -> None:
    """Route SIGTERM/SIGINT to ``callback`` for a clean daemon shutdown.

    Only possible from the main thread (the CLI's normal situation);
    tests driving these commands from worker threads fall back to the
    commands' KeyboardInterrupt / max-seconds paths.
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return

    def _handler(signum, frame):
        callback()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _handler)


def cmd_shard_worker(args: argparse.Namespace) -> int:
    """Host shard sessions over TCP for --transport socket coordinators."""
    from repro.exceptions import TransportError
    from repro.service import ShardWorkerServer
    from repro.service.socket_worker import parse_address

    try:
        host, port = parse_address(args.listen)
    except TransportError as exc:
        raise SystemExit(str(exc))
    server = ShardWorkerServer(host, port).start()
    # SIGTERM (and SIGINT) stop the listener and tear every hosted
    # session down — the same clean path --max-seconds takes — instead
    # of dying mid-frame with sessions pinned.  Installed before the
    # listening line so a supervisor that signals on startup is safe.
    _install_signal_handlers(server.stop)
    print(f"shard worker listening on {server.address} "
          f"(SIGTERM/ctrl-C to stop)", flush=True)
    try:
        server.serve_forever(max_seconds=args.max_seconds)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived HTTP/JSON control-plane daemon."""
    import json
    import threading

    from repro.exceptions import ReproError, TransportError
    from repro.service import AggregationService, RefillMode, ServiceConfig
    from repro.service.api import ControlPlane, ControlPlaneServer
    from repro.service.socket_worker import parse_address

    try:
        host, port = parse_address(args.listen)
    except TransportError as exc:
        raise SystemExit(str(exc))
    # The daemon starts with zero cohorts; every cohort arrives at
    # runtime through POST /cohorts with its own spec.  The base config
    # only fixes service-wide policy (refill mode, poll cadence, seed).
    config = ServiceConfig(
        refill_mode=RefillMode(args.refill),
        refill_poll_interval_s=args.refill_poll_interval,
        seed=args.seed,
    )
    service = AggregationService(config, build_cohorts=False).start()
    if args.trace_log:
        service.tracer.set_event_log(args.trace_log)
    control = ControlPlane(service)
    server = ControlPlaneServer(control, host, port)

    def _graceful() -> None:
        # Signal handlers must not block in the handler frame: drain on
        # a worker thread, then release serve_until().
        def _drain_and_stop() -> None:
            try:
                control.drain()
            except ReproError:
                pass
            server.request_shutdown()

        threading.Thread(target=_drain_and_stop, daemon=True).start()

    _install_signal_handlers(_graceful)
    if args.json:
        print(json.dumps({
            "event": "listening",
            "address": server.address,
            "refill": args.refill,
        }), flush=True)
    else:
        print(f"repro serve listening on {server.address} "
              f"(POST /drain or SIGTERM to stop)", flush=True)
    try:
        server.serve_until(max_seconds=args.max_seconds)
    except KeyboardInterrupt:
        try:
            control.drain()
        except ReproError:
            pass
        server.stop()
    # drain() is idempotent: if serve_until / a signal already drained,
    # this returns the cached summary; otherwise it performs the drain.
    try:
        summary = control.drain()
    except ReproError:
        summary = {"drained": False}
    if args.json:
        print(json.dumps({"event": "drained", **summary}), flush=True)
    else:
        print(f"drained: {summary.get('total_rounds', 0)} rounds served, "
              f"{summary.get('total_stalls', 0)} stalls", flush=True)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Render one captured round trace as an ASCII timing diagram."""
    import json
    from urllib.error import URLError
    from urllib.request import urlopen

    from repro.obs import render_trace

    def fetch(url: str) -> dict:
        with urlopen(url) as resp:
            return json.loads(resp.read().decode("utf-8"))

    source = args.source
    try:
        if source.startswith(("http://", "https://")):
            data = fetch(source)
            if "traces" in data:
                # A GET /cohorts/{id}/traces listing: follow the newest
                # summary to its full span tree.
                summaries = data["traces"]
                if not summaries:
                    print("no traces retained for this cohort "
                          "(tracing disabled, or no rounds run yet)")
                    return 1
                base = source.split("/cohorts/", 1)[0]
                data = fetch(f"{base}/traces/{summaries[0]['trace_id']}")
        else:
            with open(source, "r", encoding="utf-8") as fh:
                data = json.load(fh)
    except URLError as exc:
        raise SystemExit(f"cannot fetch {source}: {exc}")
    except OSError as exc:
        raise SystemExit(f"cannot read {source}: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{source} is not valid JSON: {exc}")
    if "root" not in data:
        raise SystemExit(
            f"{source} does not look like a round trace "
            "(expected the GET /traces/{id} shape with a 'root' span)"
        )
    print(render_trace(data, width=args.width))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    t = simulate(args.protocol, args.num_users, args.dim, args.dropout,
                 args.train_time, SimulationConfig())
    print(f"{args.protocol} N={args.num_users} d={args.dim} p={args.dropout}")
    for phase, secs in t.as_dict().items():
        print(f"  {phase:9s}: {secs:9.1f} s")
    print(f"  total     : {t.total(False):9.1f} s "
          f"(overlapped {t.total(True):9.1f} s)")
    return 0


def cmd_gains(args: argparse.Namespace) -> int:
    print(f"LightSecAgg gains vs (SecAgg, SecAgg+), N={args.num_users}, "
          f"p={args.dropout}")
    for task, d in PAPER_MODEL_SIZES.items():
        g = compute_gains(task, args.num_users, d, args.dropout,
                          TRAINING_TIMES[task], SimulationConfig())
        print(f"  {task:22s} non-ov {g.non_overlapped['secagg']:5.1f}x/"
              f"{g.non_overlapped['secagg+']:4.1f}x   "
              f"ov {g.overlapped['secagg']:5.1f}x/"
              f"{g.overlapped['secagg+']:4.1f}x   "
              f"agg-only {g.aggregation_only['secagg']:5.1f}x/"
              f"{g.aggregation_only['secagg+']:4.1f}x")
    return 0


def cmd_breakdown(args: argparse.Namespace) -> int:
    d = PAPER_MODEL_SIZES["cnn_femnist"]
    print(f"breakdown (s), CNN/FEMNIST d={d}, N={args.num_users}")
    for p in (0.1, 0.3, 0.5):
        for proto in ("lightsecagg", "secagg", "secagg+"):
            t = simulate(proto, args.num_users, d, p,
                         TRAINING_TIMES["cnn_femnist"], SimulationConfig())
            print(f"  p={p} {proto:12s} offline={t.offline:7.1f} "
                  f"upload={t.upload:6.1f} recovery={t.recovery:8.1f} "
                  f"total={t.total(False):8.1f}")
    return 0


def cmd_complexity(args: argparse.Namespace) -> int:
    table = complexity_table(
        paper_operating_point(args.num_users, args.dim, args.dropout)
    )
    header = f"{'row':24s}" + "".join(f"{p:>16s}" for p in PROTOCOLS)
    print(header)
    for row in ROWS:
        vals = "".join(f"{table[p][row]:16.3g}" for p in PROTOCOLS)
        print(f"{row:24s}{vals}")
    return 0


def cmd_storage(args: argparse.Namespace) -> int:
    n = args.num_users
    cmp = compare_storage(n, int(0.7 * n), n // 2)
    print(f"storage comparison at N={n}, U={int(0.7 * n)}, T={n // 2} "
          f"(symbols of F_q^(d/(U-T)))")
    print(f"  Zhao&Sun total randomness : {cmp.zhao_sun_randomness:.4g}")
    print(f"  LightSecAgg total         : {cmp.lightsecagg_randomness}")
    print(f"  Zhao&Sun per-user storage : {cmp.zhao_sun_per_user:.4g}")
    print(f"  LightSecAgg per-user      : {cmp.lightsecagg_per_user}")
    print(f"  randomness ratio          : {cmp.randomness_ratio:.4g}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LightSecAgg reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("round", help="run a real secure-aggregation round")
    p.add_argument("--protocol", default="lightsecagg",
                   choices=PROTOCOL_CHOICES)
    p.add_argument("-n", "--num-users", type=int, default=10)
    p.add_argument("-d", "--dim", type=int, default=1000)
    p.add_argument("--drop", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_round)

    p = sub.add_parser(
        "session",
        help="multi-round session with amortized offline phase vs one-shot",
    )
    p.add_argument("--protocol", default="lightsecagg",
                   choices=PROTOCOL_CHOICES)
    p.add_argument("-n", "--num-users", type=int, default=16)
    p.add_argument("-d", "--dim", type=int, default=2000)
    p.add_argument("-r", "--rounds", type=int, default=10)
    p.add_argument("--pool", type=int, default=None,
                   help="offline pool size (default: rounds)")
    p.add_argument("--drop", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_session)

    p = sub.add_parser(
        "service",
        help="sharded multi-cohort aggregation service with background refill",
    )
    p.add_argument("-n", "--num-users", type=int, default=8)
    p.add_argument("-d", "--dim", type=int, default=1024)
    p.add_argument("-c", "--cohorts", type=int, default=2)
    p.add_argument("-s", "--shards", type=int, default=1)
    p.add_argument("-r", "--rounds", type=int, default=10)
    p.add_argument("--pool", type=int, default=4)
    p.add_argument("--low-water", type=int, default=0)
    p.add_argument("--refill", choices=["sync", "background"], default="sync")
    p.add_argument(
        "--transport", choices=["inline", "process", "socket", "shm"],
        default="inline",
        help="shard execution backend: 'inline' calls the per-shard "
             "sessions in this process (the default); 'process' pins each "
             "shard's session in a long-lived worker process and "
             "scatter/gathers rounds and refills over the binary wire "
             "format, so shards use multiple cores; 'socket' speaks the "
             "same frames over TCP to standalone `repro shard-worker` "
             "hosts named by --connect, with heartbeat supervision and "
             "reconnect/re-pin; 'shm' is the process backend with vector "
             "payloads handed over in shared memory (frames carry only "
             "name+offset references)",
    )
    p.add_argument(
        "--wire-format", choices=["raw", "packed"], default="packed",
        help="vector payload encoding on framed transports: 'packed' "
             "bit-packs field elements to ceil(log2(q)) bits per element "
             "where the peer negotiates the capability (the default); "
             "'raw' sends full little-endian words",
    )
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes per cohort for --transport process/shm "
             "(default: one per shard; fewer workers host several shards "
             "each)",
    )
    p.add_argument(
        "--connect", default=None, metavar="HOST:PORT[,HOST:PORT...]",
        help="shard-worker addresses for --transport socket; shards are "
             "assigned round-robin across them and all cohorts share one "
             "connection per address",
    )
    p.add_argument("--dropout", type=float, default=0.0)
    p.add_argument("--settle", action="store_true",
                   help="wait for the refiller between sweeps (steady state)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="emit the full status snapshot as JSON")
    p.set_defaults(func=cmd_service)

    p = sub.add_parser(
        "shard-worker",
        help="host shard sessions over TCP for --transport socket "
             "coordinators (sessions are built here from the specs the "
             "coordinator sends; nothing live crosses the network)",
    )
    p.add_argument(
        "--listen", default="127.0.0.1:7000", metavar="HOST:PORT",
        help="bind address (port 0 picks an ephemeral port, printed on "
             "startup)",
    )
    p.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="exit after S seconds (default: serve until interrupted)",
    )
    p.set_defaults(func=cmd_shard_worker)

    p = sub.add_parser(
        "serve",
        help="long-running HTTP/JSON control plane over the aggregation "
             "service: create cohorts, submit rounds, scrape Prometheus "
             "metrics, and drain — all at runtime, no process restart",
    )
    p.add_argument(
        "--listen", default="127.0.0.1:8080", metavar="HOST:PORT",
        help="bind address (port 0 picks an ephemeral port, printed on "
             "startup)",
    )
    p.add_argument(
        "--refill", choices=["sync", "background"], default="background",
        help="mask-pool refill policy for every cohort the daemon hosts "
             "(default: background — the point of running a daemon)",
    )
    p.add_argument(
        "--refill-poll-interval", type=float, default=0.001, metavar="S",
        help="background refiller idle poll interval in seconds",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="base-config seed (cohort specs posted to "
                        "/cohorts carry their own seed, default 0)")
    p.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="drain and exit after S seconds (default: serve until "
             "POST /drain or SIGTERM)",
    )
    p.add_argument(
        "--trace-log", default=None, metavar="PATH",
        help="append one JSON line per closed trace span to PATH (the "
             "structured event log; off by default)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit machine-readable startup/drain lines (JSON per line)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "trace",
        help="render a captured round trace as an ASCII timing diagram "
             "(Fig-5 style): pass a JSON file, a GET /traces/{id} URL, "
             "or a GET /cohorts/{id}/traces URL (renders the newest)",
    )
    p.add_argument(
        "source", metavar="SOURCE",
        help="trace JSON file path, or an http(s) URL of a running "
             "`repro serve` daemon's trace endpoint",
    )
    p.add_argument(
        "--width", type=int, default=56, metavar="COLS",
        help="character cells spanning the round's duration (default 56)",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("simulate", help="timing model for one round")
    p.add_argument("--protocol", default="lightsecagg",
                   choices=["lightsecagg", "secagg", "secagg+"])
    p.add_argument("-n", "--num-users", type=int, default=200)
    p.add_argument("-d", "--dim", type=int, default=1_206_590)
    p.add_argument("-p", "--dropout", type=float, default=0.1)
    p.add_argument("--train-time", type=float, default=22.8)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("gains", help="Table 2-style gain report")
    p.add_argument("-n", "--num-users", type=int, default=200)
    p.add_argument("-p", "--dropout", type=float, default=0.1)
    p.set_defaults(func=cmd_gains)

    p = sub.add_parser("breakdown", help="Table 4-style breakdown")
    p.add_argument("-n", "--num-users", type=int, default=200)
    p.set_defaults(func=cmd_breakdown)

    p = sub.add_parser("complexity", help="Table 1-style complexity rows")
    p.add_argument("-n", "--num-users", type=int, default=200)
    p.add_argument("-d", "--dim", type=int, default=1_206_590)
    p.add_argument("-p", "--dropout", type=float, default=0.1)
    p.set_defaults(func=cmd_complexity)

    p = sub.add_parser("storage", help="Table 6-style storage comparison")
    p.add_argument("-n", "--num-users", type=int, default=20)
    p.set_defaults(func=cmd_storage)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
