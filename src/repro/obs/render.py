"""Fig-5-style ASCII timing diagrams from captured round traces.

Works from the trace's JSON form (the shape served by
``GET /traces/{trace_id}``) so the ``repro trace`` CLI can render a
trace fetched over HTTP or loaded from a file without reconstructing
live objects.  Bars are positioned on a shared wall-clock axis spanning
the root span, which is what makes cross-process stitching legible:
a remote worker's ``shard_compute`` bar sits *inside* the coordinator's
``shard_scatter``/``shard_gather`` window, tagged with the worker pid.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["render_trace"]

_BAR_CHAR = "#"
_SHOWN_TAGS = ("pid", "host", "transport", "error")


def _flatten(span: Dict[str, object], depth: int = 0):
    yield depth, span
    for child in span.get("children") or []:
        yield from _flatten(child, depth + 1)


def _tag_suffix(tags: Dict[str, str]) -> str:
    parts = [f"{k}={tags[k]}" for k in _SHOWN_TAGS if k in tags]
    return ("  " + " ".join(parts)) if parts else ""


def render_trace(trace, width: int = 56) -> str:
    """Render a trace (RoundTrace or its JSON dict) as an ASCII Gantt.

    ``width`` is the number of character cells spanning the root span's
    duration; every bar is clipped to that window and drawn with at
    least one tick so sub-cell phases stay visible.
    """
    data = trace.to_json() if hasattr(trace, "to_json") else trace
    root = data["root"]
    t0 = float(root["start_unix"])
    total = float(root["duration_seconds"])
    width = max(8, int(width))
    scale = (width / total) if total > 0 else 0.0

    rows: List[Tuple[int, Dict[str, object]]] = list(_flatten(root))
    label_width = max(
        len("  " * depth + str(s["name"])) for depth, s in rows
    )

    slow = " [SLOW: %s]" % data.get("slow_phase") if data.get("slow") else ""
    lines = [
        "trace %d  cohort %d  round %d  total %.2f ms%s"
        % (
            int(data["trace_id"]),
            int(data["cohort_id"]),
            int(data["round_index"]),
            total * 1e3,
            slow,
        )
    ]
    for depth, s in rows:
        start = float(s["start_unix"])
        duration = float(s["duration_seconds"])
        lead = int(round((start - t0) * scale))
        lead = min(max(lead, 0), width - 1)
        ticks = max(1, int(round(duration * scale)))
        ticks = min(ticks, width - lead)
        label = ("  " * depth + str(s["name"])).ljust(label_width)
        bar = (" " * lead + _BAR_CHAR * ticks).ljust(width)
        tags = {str(k): str(v) for k, v in (s.get("tags") or {}).items()}
        lines.append(
            "  %s |%s| %9.2f ms%s"
            % (label, bar, duration * 1e3, _tag_suffix(tags))
        )
    return "\n".join(lines)
