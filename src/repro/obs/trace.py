"""Structured round tracing: spans, traces, and the process tracer.

A :class:`RoundTrace` records one aggregation round as a tree of
timestamped :class:`Span`\\ s — the phase vocabulary from the paper's
timing-diagram breakdown (``offline_refill``, ``collect``,
``mask_encode``, ``shard_scatter``, ``shard_compute[i]``,
``shard_gather``, ``reconstruct``) plus whatever a transport adds.
Traces are stitched *across processes*: the coordinator opens the trace
and propagates its ``trace_id`` over the wire (a trailing-optional
field on ``ShardRoundRequest``), and remote shard workers report their
compute and queue-wait timings back inside ``ShardRoundResult``, which
the transports absorb as spans tagged with the worker's pid/host.

Instrumentation points use the module-level :func:`span` context
manager, which resolves the current trace through a thread-local.  When
no trace is active — tracing disabled, or code running on a worker or
refiller thread — :func:`span` returns a shared no-op context, so the
cost of an instrumented phase is one thread-local read.  Nothing here
does per-element work; spans are strictly per-phase.

The :class:`Tracer` owns a bounded ring of recent traces (served by the
control plane's ``GET /cohorts/{id}/traces`` and ``GET /traces/{id}``),
feeds per-phase latency histograms into ``ServiceMetrics``, optionally
appends one JSON line per span close to an event log, and flags slow
rounds whose critical-path phase exceeds a configurable multiple of
its trailing median.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import statistics
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

__all__ = [
    "PHASES",
    "RoundTrace",
    "Span",
    "Tracer",
    "current_trace",
    "phase_name",
    "span",
]

logger = logging.getLogger("repro.obs")

#: Canonical phase vocabulary, in critical-path order.  Indexed spans
#: (``shard_compute[3]``) normalize to their base name for histograms.
PHASES = (
    "offline_refill",
    "collect",
    "mask_encode",
    "shard_scatter",
    "shard_compute",
    "shard_gather",
    "reconstruct",
)

def phase_name(name: str) -> str:
    """Histogram label for a span name: ``shard_compute[3]`` -> ``shard_compute``."""
    return name.split("[", 1)[0]


class Span:
    """One timestamped phase: a name, a wall-clock window, tags, children."""

    __slots__ = ("name", "start", "end", "tags", "children")

    def __init__(
        self,
        name: str,
        start: float,
        end: Optional[float] = None,
        tags: Optional[Dict[str, str]] = None,
        children: Optional[List["Span"]] = None,
    ):
        self.name = name
        self.start = start
        self.end = end
        self.tags = tags if tags is not None else {}
        self.children = children if children is not None else []

    @property
    def duration(self) -> float:
        return 0.0 if self.end is None else max(0.0, self.end - self.start)

    def close(self, end: Optional[float] = None) -> None:
        if self.end is None:
            self.end = time.time() if end is None else end

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start_unix": self.start,
            "duration_seconds": self.duration,
            "tags": dict(self.tags),
            "children": [c.to_json() for c in self.children],
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "Span":
        start = float(data["start_unix"])
        return cls(
            name=str(data["name"]),
            start=start,
            end=start + float(data.get("duration_seconds", 0.0)),
            tags={str(k): str(v) for k, v in dict(data.get("tags") or {}).items()},
            children=[cls.from_json(c) for c in data.get("children") or []],
        )

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1e3:.2f}ms, tags={self.tags})"


class RoundTrace:
    """One round's stitched cross-process timeline.

    The root span covers the whole round; phase spans hang off it.  The
    ``_stack`` tracks nesting for :func:`span` so an ``offline_refill``
    opened inside a round parents the ``mask_encode`` it triggers.
    """

    __slots__ = (
        "trace_id",
        "cohort_id",
        "round_index",
        "root",
        "slow",
        "slow_phase",
        "_stack",
    )

    def __init__(self, trace_id: int, cohort_id: int, round_index: int):
        self.trace_id = trace_id
        self.cohort_id = cohort_id
        self.round_index = round_index
        self.root = Span("round", start=time.time())
        self.slow = False
        self.slow_phase: Optional[str] = None
        self._stack: List[Span] = []

    @property
    def duration(self) -> float:
        return self.root.duration

    def add_span(self, span_: Span) -> None:
        """Attach an externally built span (e.g. a worker-reported one)."""
        self.root.children.append(span_)

    def phase_durations(self) -> Dict[str, float]:
        """Total seconds per base phase name, over top-level spans."""
        totals: Dict[str, float] = {}
        for s in self.root.children:
            base = phase_name(s.name)
            totals[base] = totals.get(base, 0.0) + s.duration
        return totals

    def to_json(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "cohort_id": self.cohort_id,
            "round_index": self.round_index,
            "slow": self.slow,
            "slow_phase": self.slow_phase,
            "root": self.root.to_json(),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "RoundTrace":
        trace = cls(
            int(data["trace_id"]),
            int(data["cohort_id"]),
            int(data["round_index"]),
        )
        trace.root = Span.from_json(data["root"])
        trace.slow = bool(data.get("slow", False))
        raw_phase = data.get("slow_phase")
        trace.slow_phase = None if raw_phase is None else str(raw_phase)
        return trace

    def summary(self) -> Dict[str, object]:
        """Compact listing row for ``GET /cohorts/{id}/traces``."""
        return {
            "trace_id": self.trace_id,
            "cohort_id": self.cohort_id,
            "round_index": self.round_index,
            "start_unix": self.root.start,
            "duration_seconds": self.duration,
            "spans": sum(1 for _ in self.root.walk()) - 1,
            "slow": self.slow,
            "slow_phase": self.slow_phase,
        }

    def __repr__(self) -> str:
        return (
            f"RoundTrace(id={self.trace_id}, cohort={self.cohort_id}, "
            f"round={self.round_index}, spans={len(self.root.children)})"
        )


# ----------------------------------------------------------------------
# Thread-local trace context + the span() instrumentation primitive.

_active = threading.local()


def current_trace() -> Optional[RoundTrace]:
    """The trace active on this thread, or None."""
    return getattr(_active, "trace", None)


def _activate(trace: Optional[RoundTrace]) -> None:
    _active.trace = trace


class _NullSpanContext:
    """Shared no-op context: the entire cost of tracing-when-disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    __slots__ = ("_trace", "_span")

    def __init__(self, trace: RoundTrace, name: str, tags: Dict[str, str]):
        self._trace = trace
        self._span = Span(name, start=time.time(), tags=tags)

    def __enter__(self) -> Span:
        trace = self._trace
        parent = trace._stack[-1] if trace._stack else trace.root
        parent.children.append(self._span)
        trace._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb):
        self._span.close()
        if exc_type is not None:
            self._span.tags.setdefault("error", exc_type.__name__)
        stack = self._trace._stack
        if stack and stack[-1] is self._span:
            stack.pop()
        return False


def span(name: str, **tags: str):
    """Open a phase span on the current thread's trace.

    No-op (returns a shared null context yielding ``None``) when no
    trace is active, so instrumented code paths stay allocation-free
    with tracing disabled.
    """
    trace = current_trace()
    if trace is None:
        return _NULL_SPAN
    return _SpanContext(trace, name, tags)


# ----------------------------------------------------------------------


class Tracer:
    """Owns trace lifecycle, retention, metrics export, and slow detection.

    Thread-safe: rounds may finish on several cohort threads while the
    control plane reads ``recent``/``get`` from scrape threads.
    """

    def __init__(
        self,
        enabled: bool = True,
        capacity: int = 256,
        slow_factor: float = 5.0,
        slow_window: int = 64,
        slow_min_samples: int = 5,
        metrics=None,
    ):
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity}")
        if slow_factor <= 0:
            raise ValueError(f"slow factor must be > 0, got {slow_factor}")
        self.enabled = enabled
        self.capacity = capacity
        self.slow_factor = slow_factor
        self.slow_window = slow_window
        self.slow_min_samples = slow_min_samples
        self.metrics = metrics
        self.slow_rounds = 0
        self._lock = threading.Lock()
        self._ring: Deque[RoundTrace] = deque()
        self._by_id: Dict[int, RoundTrace] = {}
        # pid-salted so ids from coordinator restarts don't collide in logs
        self._ids = itertools.count(1)
        self._id_base = (os.getpid() & 0x3FFFFF) << 32
        self._phase_windows: Dict[Tuple[int, str], Deque[float]] = {}
        self._event_lock = threading.Lock()
        self._event_file = None

    # -- lifecycle -----------------------------------------------------
    def start_round(
        self, cohort_id: int, round_index: int
    ) -> Optional[RoundTrace]:
        """Open a trace and make it this thread's active trace.

        Returns None (and activates nothing) when tracing is disabled —
        callers hold the result and pass it back to :meth:`finish`.
        """
        if not self.enabled:
            return None
        trace = RoundTrace(
            self._id_base | next(self._ids), cohort_id, round_index
        )
        _activate(trace)
        return trace

    def finish(self, trace: Optional[RoundTrace], error: Optional[BaseException] = None) -> None:
        """Close, retain, export, and deactivate a trace from start_round."""
        if trace is None:
            return
        now = time.time()
        for open_span in reversed(trace._stack):
            open_span.close(now)
        trace._stack.clear()
        trace.root.close(now)
        if error is not None:
            trace.root.tags.setdefault("error", type(error).__name__)
        if current_trace() is trace:
            _activate(None)
        self._detect_slow(trace)
        with self._lock:
            while len(self._ring) >= self.capacity:
                evicted = self._ring.popleft()
                self._by_id.pop(evicted.trace_id, None)
            self._ring.append(trace)
            self._by_id[trace.trace_id] = trace
        if self.metrics is not None:
            for top in trace.root.children:
                self.metrics.record_phase(phase_name(top.name), top.duration)
        self._log_events(trace)

    def trace_round(self, cohort_id: int, round_index: int):
        """Context-manager form of start_round/finish."""
        return _TraceRoundContext(self, cohort_id, round_index)

    # -- retrieval -----------------------------------------------------
    @property
    def retained(self) -> int:
        """Completed traces currently held in the ring."""
        with self._lock:
            return len(self._ring)

    def get(self, trace_id: int) -> Optional[RoundTrace]:
        with self._lock:
            return self._by_id.get(trace_id)

    def recent(
        self, cohort_id: Optional[int] = None, limit: int = 20
    ) -> List[RoundTrace]:
        """Most-recent-first finished traces, optionally for one cohort."""
        out: List[RoundTrace] = []
        with self._lock:
            for trace in reversed(self._ring):
                if cohort_id is not None and trace.cohort_id != cohort_id:
                    continue
                out.append(trace)
                if len(out) >= limit:
                    break
        return out

    # -- slow-round detection ------------------------------------------
    def _detect_slow(self, trace: RoundTrace) -> None:
        """Flag the round if its critical-path phase blows past its
        trailing median; then fold this round into the windows."""
        tops = trace.root.children
        if not tops:
            return
        critical = max(tops, key=lambda s: s.duration)
        base = phase_name(critical.name)
        with self._lock:
            window = self._phase_windows.get((trace.cohort_id, base))
            if window is not None and len(window) >= self.slow_min_samples:
                median = statistics.median(window)
                if median > 0 and critical.duration > self.slow_factor * median:
                    trace.slow = True
                    trace.slow_phase = base
                    self.slow_rounds += 1
            for top in tops:
                key = (trace.cohort_id, phase_name(top.name))
                window = self._phase_windows.get(key)
                if window is None:
                    window = deque(maxlen=self.slow_window)
                    self._phase_windows[key] = window
                window.append(top.duration)
        if trace.slow:
            logger.warning(
                "slow round: cohort %d round %d trace %d — %s took %.4fs "
                "(> %.1fx trailing median)",
                trace.cohort_id,
                trace.round_index,
                trace.trace_id,
                base,
                critical.duration,
                self.slow_factor,
            )

    # -- structured event log ------------------------------------------
    def set_event_log(self, path: Optional[str]) -> None:
        """Route one JSON line per span close to ``path`` (append mode);
        None closes the log."""
        with self._event_lock:
            if self._event_file is not None:
                self._event_file.close()
                self._event_file = None
            if path:
                self._event_file = open(path, "a", encoding="utf-8")

    def close(self) -> None:
        self.set_event_log(None)

    def _log_events(self, trace: RoundTrace) -> None:
        if self._event_file is None:
            return
        spans = sorted(
            trace.root.walk(), key=lambda s: (s.end or 0.0, s.start)
        )
        lines = []
        for s in spans:
            event = {
                "event": "span",
                "trace_id": trace.trace_id,
                "cohort_id": trace.cohort_id,
                "round_index": trace.round_index,
                "span": s.name,
                "phase": phase_name(s.name),
                "start_unix": s.start,
                "duration_seconds": s.duration,
                "tags": dict(s.tags),
            }
            if s is trace.root:
                event["slow"] = trace.slow
                event["slow_phase"] = trace.slow_phase
            lines.append(json.dumps(event, sort_keys=True))
        with self._event_lock:
            if self._event_file is None:
                return
            self._event_file.write("\n".join(lines) + "\n")
            self._event_file.flush()


class _TraceRoundContext:
    __slots__ = ("_tracer", "_cohort_id", "_round_index", "_trace")

    def __init__(self, tracer: Tracer, cohort_id: int, round_index: int):
        self._tracer = tracer
        self._cohort_id = cohort_id
        self._round_index = round_index
        self._trace: Optional[RoundTrace] = None

    def __enter__(self) -> Optional[RoundTrace]:
        self._trace = self._tracer.start_round(
            self._cohort_id, self._round_index
        )
        return self._trace

    def __exit__(self, exc_type, exc, tb):
        self._tracer.finish(self._trace, error=exc)
        return False
