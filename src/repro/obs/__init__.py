"""Observability: structured round tracing across processes.

Pure-stdlib by design — ``repro.obs`` imports nothing from the rest of
the package, so any layer (protocols, transports, service, CLI) can
instrument itself with :func:`span` without import cycles.
"""

from repro.obs.render import render_trace
from repro.obs.trace import (
    PHASES,
    RoundTrace,
    Span,
    Tracer,
    current_trace,
    phase_name,
    span,
)

__all__ = [
    "PHASES",
    "RoundTrace",
    "Span",
    "Tracer",
    "current_trace",
    "phase_name",
    "render_trace",
    "span",
]
