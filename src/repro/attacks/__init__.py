"""Privacy attacks motivating secure aggregation."""

from repro.attacks.inversion import (
    InversionResult,
    attack_success,
    invert_logistic_gradient,
    logistic_gradient,
)

__all__ = [
    "InversionResult",
    "logistic_gradient",
    "invert_logistic_gradient",
    "attack_success",
]
