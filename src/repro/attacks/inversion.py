"""Gradient-inversion attack demo — why secure aggregation is needed.

The paper's threat model (Sec. 1-2) is motivated by model-inversion
attacks: an honest-but-curious server that sees an *individual* local
update can reconstruct training data (Geiping et al., 2020; Zhu & Han,
2020).  This module implements the textbook case that is *exact*: for
softmax regression trained with one full-batch step on a single example,
the weight gradient is the outer product ``(p - onehot(y)) x^T``, so the
input is recoverable up to scale from any nonzero gradient row — and the
label is identified by the sign of the bias gradient.

``invert_logistic_gradient`` performs that reconstruction;
``attack_success`` quantifies it (cosine similarity to the true input).
Running the same attack against a *securely aggregated* update of many
users fails, which is what the example script demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ReproError


@dataclass(frozen=True)
class InversionResult:
    """Outcome of a gradient-inversion attempt."""

    recovered_input: np.ndarray
    recovered_label: int
    cosine_similarity: float


def logistic_gradient(
    x: np.ndarray, y: int, weights: np.ndarray, bias: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-example softmax-regression gradient ``(dW, db)``.

    ``weights`` has shape (in_dim, classes); ``x`` is one flat example.
    """
    logits = x @ weights + bias
    shifted = logits - logits.max()
    probs = np.exp(shifted)
    probs /= probs.sum()
    err = probs.copy()
    err[y] -= 1.0
    return np.outer(x, err), err


def invert_logistic_gradient(
    grad_w: np.ndarray,
    grad_b: np.ndarray,
    true_input: Optional[np.ndarray] = None,
) -> InversionResult:
    """Reconstruct the input (up to scale) and label from a gradient.

    The label is the unique class with a negative bias gradient (its
    softmax error term is ``p_y - 1 < 0``); the input is
    ``grad_w[:, y] / grad_b[y]``.
    """
    if grad_w.ndim != 2 or grad_b.ndim != 1 or grad_w.shape[1] != grad_b.shape[0]:
        raise ReproError("gradient shapes are inconsistent")
    label = int(np.argmin(grad_b))
    if grad_b[label] >= 0:
        raise ReproError(
            "no negative bias-gradient entry; not a single-example "
            "cross-entropy gradient"
        )
    recovered = grad_w[:, label] / grad_b[label]
    cosine = 0.0
    if true_input is not None:
        denom = np.linalg.norm(recovered) * np.linalg.norm(true_input)
        if denom > 0:
            cosine = float(recovered @ true_input / denom)
    return InversionResult(
        recovered_input=recovered,
        recovered_label=label,
        cosine_similarity=cosine,
    )


def attack_success(result: InversionResult, threshold: float = 0.99) -> bool:
    """True when the reconstruction is essentially exact."""
    return result.cosine_similarity >= threshold
