"""Asynchronous LightSecAgg aggregation (paper Appendix F.3).

One :meth:`AsyncSecureAggregator.aggregate` call corresponds to one buffer
drain at the server: a group of ``K`` updates, generated at *different*
rounds ``t_i``, must be averaged with staleness weights without revealing
any individual update.

Key protocol points implemented here:

* Each delivered update is protected by a mask generated (and encoded /
  shared) at its *download* round — masks from different rounds coexist in
  one aggregation, which is exactly what breaks SecAgg's pairwise
  cancellation and what LightSecAgg's linear mask encoding tolerates
  (commutativity of MDS coding and addition, Sec. 4.2).
* Staleness weights are the quantized integers ``s_cg(tau)`` of eq. (34),
  applied in-field by the users to their held shares and by the server to
  the masked updates.
* Recovery is one-shot: any ``U`` surviving users' weighted aggregated
  shares decode the weighted aggregate mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import DropoutError, ProtocolError
from repro.coding.mask_encoding import MaskEncoder
from repro.field.arithmetic import FiniteField
from repro.asyncfl.staleness import QuantizedStaleness
from repro.protocols.lightsecagg.params import LSAParams
from repro.quantization.quantizer import ModelQuantizer


@dataclass(frozen=True)
class AsyncDelivery:
    """One buffered update at aggregation time.

    ``staleness`` is ``tau_i = t - t_i``; ``update`` is the real-valued
    local update ``Delta_i``.
    """

    user_id: int
    staleness: int
    update: np.ndarray


@dataclass(frozen=True)
class PreparedDelivery:
    """One delivery after the user-side randomized steps.

    ``weight`` is the quantized staleness weight ``s_cg(tau)``;
    ``quantized`` is the field embedding of the update, or ``None`` when
    the weight quantized to zero (the update contributes nothing and its
    quantization draw is skipped, so the rng stream stays aligned between
    any two consumers preparing the same deliveries).
    """

    user_id: int
    staleness: int
    weight: int
    quantized: Optional[np.ndarray]


def prepare_deliveries(
    deliveries: Sequence[AsyncDelivery],
    model_dim: int,
    quantizer: ModelQuantizer,
    staleness: QuantizedStaleness,
    rng: np.random.Generator,
) -> List[PreparedDelivery]:
    """Run the user-side randomized pipeline for a buffer of deliveries.

    Per delivery, in buffer order: validate the update's shape, draw the
    staleness weight, and (for nonzero weights) stochastically quantize
    the update into the field.  These are *all* the rng draws the
    protocol makes that affect the aggregate value — masks cancel exactly
    — so two callers that prepare the same deliveries with identically
    seeded rngs obtain bit-identical ``(weight, quantized)`` pairs.  That
    is the hook the service's buffered-async engine uses to stay
    bit-identical to :meth:`AsyncSecureAggregator.aggregate` while
    serving masks from a precomputed pool.
    """
    prepared: List[PreparedDelivery] = []
    for delivery in deliveries:
        if delivery.update.shape != (model_dim,):
            raise ProtocolError(
                f"update shape {delivery.update.shape} != ({model_dim},)"
            )
        w = staleness.weight(delivery.staleness, rng)
        quantized = (
            quantizer.quantize(delivery.update, rng) if w != 0 else None
        )
        prepared.append(
            PreparedDelivery(
                user_id=delivery.user_id,
                staleness=delivery.staleness,
                weight=w,
                quantized=quantized,
            )
        )
    return prepared


class AsyncSecureAggregator:
    """Secure weighted aggregation of a buffer of stale updates."""

    def __init__(
        self,
        gf: FiniteField,
        params: LSAParams,
        model_dim: int,
        quantizer: ModelQuantizer,
        staleness: QuantizedStaleness,
        generator: str = "lagrange",
    ):
        self.gf = gf
        self.params = params
        self.model_dim = model_dim
        self.quantizer = quantizer
        self.staleness = staleness
        self.encoder = MaskEncoder(
            gf,
            num_users=params.num_users,
            target_survivors=params.target_survivors,
            privacy=params.privacy,
            model_dim=model_dim,
            generator=generator,
        )

    def aggregate(
        self,
        deliveries: Sequence[AsyncDelivery],
        rng: Optional[np.random.Generator] = None,
        recovery_dropouts: Optional[set] = None,
    ) -> np.ndarray:
        """Securely compute the staleness-weighted average update.

        Returns the real-valued global update direction
        ``sum_i Q_cg(s(tau_i)) Q_cl(Delta_i) / sum_i Q_cg(s(tau_i))``
        (paper eq. 37, without the server learning rate).

        ``recovery_dropouts`` optionally removes users from the recovery
        phase (they still contribute masked updates); at least ``U`` users
        must remain.
        """
        if not deliveries:
            raise ProtocolError("cannot aggregate an empty buffer")
        rng = rng if rng is not None else np.random.default_rng()
        recovery_dropouts = recovery_dropouts or set()
        n = self.params.num_users
        responders = [j for j in range(n) if j not in recovery_dropouts]
        if len(responders) < self.params.target_survivors:
            raise DropoutError(
                f"only {len(responders)} recovery responders, need "
                f"U={self.params.target_survivors}"
            )

        # --- user side: quantize and weight every delivery first (all the
        # value-affecting rng draws, shared with the service engine via
        # prepare_deliveries), then mask (each mask carries its timestamp;
        # simulated here by drawing the mask at aggregation time, which is
        # distributionally identical) and upload.
        prepared = prepare_deliveries(
            deliveries, self.model_dim, self.quantizer, self.staleness, rng
        )
        total_weight = sum(p.weight for p in prepared)
        if total_weight == 0:
            raise ProtocolError("all staleness weights quantized to zero")

        masked_sum = self.gf.zeros(self.model_dim)
        share_matrix: Dict[int, List[np.ndarray]] = {j: [] for j in range(n)}
        for p in prepared:
            if p.weight == 0:
                continue
            mask = self.encoder.generate_mask(rng)
            shares = self.encoder.encode(mask, rng)  # (N, share_dim)
            masked = self.gf.add(p.quantized, mask)
            # Server applies the public integer weight to the masked update.
            masked_sum = self.gf.add(masked_sum, self.gf.mul(masked, p.weight))
            # Each holder will apply the same weight to its share.
            for j in range(n):
                share_matrix[j].append(self.gf.mul(shares[j], p.weight))

        # --- recovery: any U responders send their weighted aggregated
        # shares; one-shot decode of the weighted aggregate mask.
        agg_shares: Dict[int, np.ndarray] = {}
        for j in responders[: self.params.target_survivors]:
            stack = np.stack(share_matrix[j], axis=0)
            agg_shares[j] = self.gf.sum(stack, axis=0)
        aggregate_mask = self.encoder.decode_aggregate(agg_shares)

        weighted_field_sum = self.gf.sub(masked_sum, aggregate_mask)
        # phi^{-1} then divide by c_l (dequantize) and by the integer weight
        # sum: exactly eq. (35)/(37) since weights are c_g * Q_cg(s).
        real_sum = self.quantizer.dequantize(weighted_field_sum)
        return real_sum / total_weight
