"""Buffered asynchronous FL trainers: FedBuff baseline and async LightSecAgg.

The simulation follows the paper's async experimental setup (Sec. F.5):
``N`` users, a server buffer of size ``K``, and per-delivery staleness
drawn uniformly from ``[0, tau_max]``.  A user delivering at round ``t``
with staleness ``tau`` trained from the global model of round ``t - tau``
(the trainer keeps a window of past global parameter vectors for this).

Two aggregation back-ends share the simulation:

* :class:`FedBuffTrainer` — plain real-valued staleness-weighted averaging
  (Nguyen et al., 2021), the paper's insecure baseline in Fig. 7/11/12.
* :class:`AsyncLightSecAggTrainer` — the secure path through
  :class:`~repro.asyncfl.secure_aggregator.AsyncSecureAggregator`,
  including quantization and in-field staleness weighting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence

import numpy as np

from repro.exceptions import ReproError
from repro.asyncfl.secure_aggregator import AsyncDelivery, AsyncSecureAggregator
from repro.asyncfl.staleness import QuantizedStaleness, StalenessFn, constant_staleness
from repro.field.arithmetic import FiniteField
from repro.fl.datasets.synthetic import Dataset
from repro.fl.trainer import LocalTrainingConfig, local_update
from repro.protocols.lightsecagg.params import LSAParams
from repro.quantization.quantizer import ModelQuantizer, QuantizationConfig


@dataclass
class AsyncRoundRecord:
    """Telemetry for one buffered-async global round."""

    round_index: int
    participants: List[int]
    staleness: List[int]
    test_loss: Optional[float] = None
    test_accuracy: Optional[float] = None


@dataclass
class AsyncHistory:
    records: List[AsyncRoundRecord] = field(default_factory=list)

    @property
    def accuracies(self) -> List[float]:
        return [r.test_accuracy for r in self.records if r.test_accuracy is not None]


class _BufferedAsyncBase:
    """Shared staleness simulation for buffered async FL."""

    def __init__(
        self,
        model,
        client_datasets: Sequence[Dataset],
        buffer_size: int = 10,
        tau_max: int = 10,
        local_config: LocalTrainingConfig = LocalTrainingConfig(epochs=1),
        server_lr: float = 1.0,
        seed: int = 0,
    ):
        if buffer_size <= 0 or buffer_size > len(client_datasets):
            raise ReproError("require 0 < buffer_size <= num_users")
        if tau_max < 0:
            raise ReproError("tau_max must be non-negative")
        self.model = model
        self.client_datasets = list(client_datasets)
        self.num_users = len(self.client_datasets)
        self.buffer_size = buffer_size
        self.tau_max = tau_max
        self.local_config = local_config
        self.server_lr = server_lr
        self.rng = np.random.default_rng(seed)
        self.global_params = model.get_flat_params()
        # Window of past global models for stale training starts.
        self._param_history: Deque[np.ndarray] = deque(maxlen=tau_max + 1)
        self._param_history.append(self.global_params.copy())
        self.history = AsyncHistory()

    # ------------------------------------------------------------------
    def _simulate_deliveries(self, t: int) -> List[AsyncDelivery]:
        """Sample K users with uniform staleness and compute their updates."""
        participants = self.rng.choice(
            self.num_users, size=self.buffer_size, replace=False
        )
        deliveries: List[AsyncDelivery] = []
        for uid in participants.tolist():
            tau = int(self.rng.integers(0, min(t, self.tau_max) + 1))
            # Index -1 is the current model, -(tau+1) the model tau rounds ago.
            start_params = self._param_history[-(tau + 1)]
            delta = local_update(
                self.model,
                start_params,
                self.client_datasets[uid],
                self.local_config,
                self.rng,
            )
            deliveries.append(
                AsyncDelivery(user_id=uid, staleness=tau, update=delta)
            )
        return deliveries

    def _aggregate(self, deliveries: List[AsyncDelivery]) -> np.ndarray:
        raise NotImplementedError

    def run_round(self, test_set: Optional[Dataset] = None) -> AsyncRoundRecord:
        t = len(self.history.records)
        deliveries = self._simulate_deliveries(t)
        update = self._aggregate(deliveries)
        self.global_params = self.global_params - self.server_lr * update
        self.model.set_flat_params(self.global_params)
        self._param_history.append(self.global_params.copy())
        record = AsyncRoundRecord(
            round_index=t,
            participants=[d.user_id for d in deliveries],
            staleness=[d.staleness for d in deliveries],
        )
        if test_set is not None:
            record.test_loss, record.test_accuracy = self.model.evaluate(
                test_set.x, test_set.y
            )
        self.history.records.append(record)
        return record

    def fit(
        self, num_rounds: int, test_set: Optional[Dataset] = None
    ) -> AsyncHistory:
        for _ in range(num_rounds):
            self.run_round(test_set=test_set)
        return self.history


class FedBuffTrainer(_BufferedAsyncBase):
    """Insecure buffered async FL with real-valued staleness weighting."""

    def __init__(
        self,
        model,
        client_datasets: Sequence[Dataset],
        staleness_fn: StalenessFn = constant_staleness,
        **kwargs,
    ):
        super().__init__(model, client_datasets, **kwargs)
        self.staleness_fn = staleness_fn

    def _aggregate(self, deliveries: List[AsyncDelivery]) -> np.ndarray:
        weights = np.asarray(
            [self.staleness_fn(d.staleness) for d in deliveries]
        )
        if weights.sum() <= 0:
            raise ReproError("staleness weights sum to zero")
        stacked = np.stack([d.update for d in deliveries], axis=0)
        return (weights[:, None] * stacked).sum(axis=0) / weights.sum()


class AsyncLightSecAggTrainer(_BufferedAsyncBase):
    """Buffered async FL secured by asynchronous LightSecAgg."""

    def __init__(
        self,
        model,
        client_datasets: Sequence[Dataset],
        gf: Optional[FiniteField] = None,
        params: Optional[LSAParams] = None,
        quantization: QuantizationConfig = QuantizationConfig(levels=1 << 16, clip=8.0),
        staleness_fn: StalenessFn = constant_staleness,
        staleness_levels: int = 1 << 6,
        **kwargs,
    ):
        super().__init__(model, client_datasets, **kwargs)
        gf = gf if gf is not None else FiniteField()
        if params is None:
            params = LSAParams.paper_defaults(self.num_users, dropout_rate=0.1)
        quantizer = ModelQuantizer(gf, quantization)
        # Guard the wrap-around budget: K weighted updates in the field.
        max_weight = staleness_levels  # s(tau) <= 1 -> weight <= levels
        bound = (quantization.clip or 8.0) * max_weight
        quantizer.check_budget(self.buffer_size, bound)
        self.aggregator = AsyncSecureAggregator(
            gf,
            params,
            model_dim=model.get_flat_params().shape[0],
            quantizer=quantizer,
            staleness=QuantizedStaleness(staleness_levels, staleness_fn),
        )

    def _aggregate(self, deliveries: List[AsyncDelivery]) -> np.ndarray:
        return self.aggregator.aggregate(deliveries, self.rng)
