"""Staleness-compensation functions for asynchronous FL.

The server weighs a delivered update by ``s(tau)`` where ``tau = t - t_i``
is its staleness (paper eq. 26).  The paper evaluates a constant function
(no compensation) and the polynomial ``s_alpha(tau) = (1 + tau)^-alpha``
(Fig. 7/11); the hinge variant of Xie et al. (2019) is included for
completeness.

For the secure asynchronous protocol the weighting must happen *in the
finite field*, so :class:`QuantizedStaleness` implements eq. (34):
``s_cg(tau) = cg * Q_cg(s(tau))``, a non-negative integer weight that users
and server apply to field vectors.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.exceptions import ReproError
from repro.quantization.stochastic import stochastic_round

StalenessFn = Callable[[int], float]


def constant_staleness(tau: int) -> float:
    """``s(tau) = 1`` — no staleness compensation."""
    if tau < 0:
        raise ReproError("staleness must be non-negative")
    return 1.0


def polynomial_staleness(alpha: float = 1.0) -> StalenessFn:
    """``s_alpha(tau) = (1 + tau)^-alpha`` (paper Sec. F.1)."""
    if alpha < 0:
        raise ReproError("alpha must be non-negative")

    def fn(tau: int) -> float:
        if tau < 0:
            raise ReproError("staleness must be non-negative")
        return float((1.0 + tau) ** (-alpha))

    return fn


def hinge_staleness(a: float = 10.0, b: float = 4.0) -> StalenessFn:
    """Hinge function of Xie et al. (2019): 1 until ``b``, then decaying."""
    if a <= 0 or b < 0:
        raise ReproError("require a > 0 and b >= 0")

    def fn(tau: int) -> float:
        if tau < 0:
            raise ReproError("staleness must be non-negative")
        if tau <= b:
            return 1.0
        return float(1.0 / (a * (tau - b) + 1.0))

    return fn


class QuantizedStaleness:
    """Field-compatible staleness weights ``s_cg(tau) = cg * Q_cg(s(tau))``.

    ``weight(tau, rng)`` returns the integer weight used in-field; the
    overall scale ``cg`` is divided out at dequantization (paper eq. 35).
    The paper uses ``cg = 2**6``, which it reports matches the real-valued
    staleness function's mitigation quality (Sec. F.5).
    """

    def __init__(self, levels: int = 1 << 6, fn: Optional[StalenessFn] = None):
        if levels <= 0:
            raise ReproError("levels must be a positive integer")
        self.levels = levels
        self.fn = fn if fn is not None else constant_staleness

    def weight(self, tau: int, rng: Optional[np.random.Generator] = None) -> int:
        """Integer field weight for staleness ``tau``."""
        value = self.fn(tau)
        if value < 0:
            raise ReproError("staleness function must be non-negative")
        rounded = stochastic_round(np.asarray([value]), self.levels, rng)[0]
        return int(round(rounded * self.levels))

    def real_weight(self, weight: int) -> float:
        """Convert an integer field weight back to its real value."""
        return weight / self.levels
