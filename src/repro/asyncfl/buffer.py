"""Server-side update buffer for buffered asynchronous FL (FedBuff-style).

The server stores incoming (possibly masked) local updates together with
the round index ``t_i`` at which each sender downloaded the global model;
once ``K`` updates have accumulated, the buffer is drained and aggregated
(paper Sec. F.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, List, TypeVar

import numpy as np

from repro.exceptions import ProtocolError

PayloadT = TypeVar("PayloadT")


@dataclass(frozen=True)
class BufferedUpdate(Generic[PayloadT]):
    """One buffered delivery.

    ``payload`` is a real update vector in the insecure baseline and a
    masked field vector in the secure protocol; ``download_round`` is the
    paper's ``t_i`` timestamp used for staleness weighting and for mask
    bookkeeping.
    """

    user_id: int
    download_round: int
    payload: PayloadT


class UpdateBuffer(Generic[PayloadT]):
    """Fixed-capacity FIFO buffer; drains exactly ``capacity`` items."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ProtocolError(f"buffer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._items: List[BufferedUpdate[PayloadT]] = []

    def push(self, item: BufferedUpdate[PayloadT]) -> None:
        if self.is_full:
            raise ProtocolError("buffer full; drain before pushing more")
        self._items.append(item)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def __len__(self) -> int:
        return len(self._items)

    def drain(self) -> List[BufferedUpdate[PayloadT]]:
        """Return and clear the buffered items; requires a full buffer."""
        if not self.is_full:
            raise ProtocolError(
                f"buffer has {len(self._items)}/{self.capacity} items; "
                "not ready to aggregate"
            )
        items, self._items = self._items, []
        return items
