"""Asynchronous FL: staleness functions, buffering, FedBuff, async LightSecAgg."""

from repro.asyncfl.buffer import BufferedUpdate, UpdateBuffer
from repro.asyncfl.convergence import (
    ConvergenceConstants,
    convergence_bound,
    quantization_excess,
)
from repro.asyncfl.incompatibility import (
    AsyncPairwiseOutcome,
    attempt_async_pairwise_aggregation,
    residue_matrix,
)
from repro.asyncfl.pooled import BufferedShardSession
from repro.asyncfl.secure_aggregator import (
    AsyncDelivery,
    AsyncSecureAggregator,
    PreparedDelivery,
    prepare_deliveries,
)
from repro.asyncfl.staleness import (
    QuantizedStaleness,
    constant_staleness,
    hinge_staleness,
    polynomial_staleness,
)
from repro.asyncfl.trainers import (
    AsyncHistory,
    AsyncLightSecAggTrainer,
    AsyncRoundRecord,
    FedBuffTrainer,
)

__all__ = [
    "ConvergenceConstants",
    "convergence_bound",
    "quantization_excess",
    "AsyncPairwiseOutcome",
    "attempt_async_pairwise_aggregation",
    "residue_matrix",
    "UpdateBuffer",
    "BufferedUpdate",
    "AsyncDelivery",
    "AsyncSecureAggregator",
    "PreparedDelivery",
    "prepare_deliveries",
    "BufferedShardSession",
    "constant_staleness",
    "polynomial_staleness",
    "hinge_staleness",
    "QuantizedStaleness",
    "FedBuffTrainer",
    "AsyncLightSecAggTrainer",
    "AsyncHistory",
    "AsyncRoundRecord",
]
