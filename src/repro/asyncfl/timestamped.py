"""Timestamped mask bookkeeping for asynchronous LightSecAgg (App. F.3.1).

:mod:`repro.asyncfl.secure_aggregator` draws masks lazily at aggregation
time, which is distributionally identical but does not exercise the real
protocol schedule.  This module implements the faithful version:

* When a user *downloads* the global model at round ``t_i`` it immediately
  generates ``z_i^{(t_i)}``, encodes it, and distributes the shares tagged
  with the timestamp — all *before* training finishes (the offline phase).
* Every user keeps a :class:`TimestampedMaskStore` of shares keyed by
  ``(source, round)``.
* At aggregation time the server announces ``{(i, t_i)}`` for the buffered
  updates plus the quantized staleness weights; each responder combines
  exactly the announced shares — which were encoded in *different rounds*
  — and one-shot decoding still works because MDS encoding commutes with
  addition.

The end-to-end test pins the commutativity claim: decode(sum of weighted
cross-round shares) equals the weighted sum of the original masks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coding.mask_encoding import MaskEncoder
from repro.exceptions import DropoutError, ProtocolError
from repro.field.arithmetic import FiniteField
from repro.protocols.lightsecagg.params import LSAParams


@dataclass(frozen=True)
class MaskAnnouncement:
    """Server broadcast before recovery: which (user, round) masks to sum,
    with which integer staleness weights (paper's {S(t), {t_i}, c_g})."""

    entries: Tuple[Tuple[int, int, int], ...]  # (user, round, weight)


class TimestampedMaskStore:
    """Per-user storage of received coded shares keyed by (source, round)."""

    def __init__(self, gf: FiniteField, share_dim: int):
        self.gf = gf
        self.share_dim = share_dim
        self._shares: Dict[Tuple[int, int], np.ndarray] = {}

    def put(self, source: int, round_index: int, share: np.ndarray) -> None:
        key = (source, round_index)
        if key in self._shares:
            raise ProtocolError(f"duplicate share for {key}")
        share = self.gf.array(share)
        if share.shape != (self.share_dim,):
            raise ProtocolError(
                f"share for {key} has shape {share.shape}, "
                f"expected ({self.share_dim},)"
            )
        self._shares[key] = share

    def has(self, source: int, round_index: int) -> bool:
        return (source, round_index) in self._shares

    def combine(self, announcement: MaskAnnouncement) -> np.ndarray:
        """``sum_i w_i * [~z_i^{(t_i)}]_j`` over the announced entries."""
        if not announcement.entries:
            raise ProtocolError("empty announcement")
        acc = self.gf.zeros(self.share_dim)
        for user, round_index, weight in announcement.entries:
            key = (user, round_index)
            if key not in self._shares:
                raise ProtocolError(f"missing share for {key}")
            if weight < 0:
                raise ProtocolError("weights must be non-negative")
            acc = self.gf.add(acc, self.gf.mul(self._shares[key], weight))
        return acc

    def evict_before(self, round_index: int) -> int:
        """Drop shares older than ``round_index`` (bounded staleness lets
        users garbage-collect; returns the number evicted)."""
        old = [k for k in self._shares if k[1] < round_index]
        for k in old:
            del self._shares[k]
        return len(old)

    def __len__(self) -> int:
        return len(self._shares)


class TimestampedAsyncNetwork:
    """A fleet of users exchanging timestamped mask shares.

    Drives the faithful asynchronous schedule: ``begin_round(i, t)``
    performs user *i*'s offline phase for its round-``t`` download;
    ``recover(announcement, responders)`` performs one-shot recovery on the
    server side from any ``U`` responders' combined shares.
    """

    def __init__(self, gf: FiniteField, params: LSAParams, model_dim: int):
        self.gf = gf
        self.params = params
        self.model_dim = model_dim
        self.encoder = MaskEncoder(
            gf,
            num_users=params.num_users,
            target_survivors=params.target_survivors,
            privacy=params.privacy,
            model_dim=model_dim,
        )
        self.stores = [
            TimestampedMaskStore(gf, self.encoder.share_dim)
            for _ in range(params.num_users)
        ]
        # The user's own masks, keyed by round (needed to mask the update
        # it eventually uploads).  Private to each user in a deployment.
        self._own_masks: Dict[Tuple[int, int], np.ndarray] = {}

    def begin_round(
        self, user: int, round_index: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """User's offline phase at download time; returns ``z_i^{(t)}``."""
        if not 0 <= user < self.params.num_users:
            raise ProtocolError(f"user {user} out of range")
        key = (user, round_index)
        if key in self._own_masks:
            raise ProtocolError(f"user {user} already started round {round_index}")
        mask = self.encoder.generate_mask(rng)
        shares = self.encoder.encode(mask, rng)
        for j in range(self.params.num_users):
            self.stores[j].put(user, round_index, shares[j])
        self._own_masks[key] = mask
        return mask

    def mask_update(
        self, user: int, round_index: int, quantized_update: np.ndarray
    ) -> np.ndarray:
        """``~Delta = Delta-bar + z_i^{(t_i)}`` for upload with timestamp."""
        key = (user, round_index)
        if key not in self._own_masks:
            raise ProtocolError(f"user {user} has no mask for round {round_index}")
        update = self.gf.array(quantized_update)
        if update.shape != (self.model_dim,):
            raise ProtocolError("update dimension mismatch")
        return self.gf.add(update, self._own_masks[key])

    def recover(
        self,
        announcement: MaskAnnouncement,
        responders: Sequence[int],
    ) -> np.ndarray:
        """Server-side one-shot recovery of the weighted aggregate mask."""
        if len(set(responders)) < self.params.target_survivors:
            raise DropoutError(
                f"need U={self.params.target_survivors} responders, got "
                f"{len(set(responders))}"
            )
        chosen = sorted(set(responders))[: self.params.target_survivors]
        combined = {j: self.stores[j].combine(announcement) for j in chosen}
        return self.encoder.decode_aggregate(combined)
