"""Demonstration of Remark 1 / Appendix F.2: pairwise masking breaks in
asynchronous FL.

SecAgg's correctness rests on every pair of users agreeing on the *same*
per-round seed ``a_{i,j}^{(t)}`` so that ``+PRG(a)`` and ``-PRG(a)``
cancel in the server's sum.  In buffered-asynchronous FL the updates
aggregated together were downloaded at different rounds ``t_i != t_j``, so
user *i* applies ``PRG(a^{(t_i)})`` while user *j* applies
``PRG(a^{(t_j)})`` — nothing cancels and the aggregate is corrupted by a
full-magnitude residue.

This module computes that residue explicitly.  It exists to make the
paper's impossibility argument executable: tests assert the residue is
zero exactly when all timestamps agree, and uniformly large otherwise —
while asynchronous LightSecAgg recovers the exact sum in the same setting
(see :mod:`repro.asyncfl.secure_aggregator`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.crypto.prg import PRG, seed_from_bytes
from repro.exceptions import ProtocolError
from repro.field.arithmetic import FiniteField


@dataclass(frozen=True)
class AsyncPairwiseOutcome:
    """Result of attempting pairwise-masked aggregation with stale users."""

    aggregate_with_masks: np.ndarray  # what the server would compute
    true_aggregate: np.ndarray  # what it should have computed
    residue: np.ndarray  # the uncancelled mask noise

    @property
    def is_corrupted(self) -> bool:
        return bool(np.any(self.residue != 0))


def round_seed(base_seed: int, i: int, j: int, round_index: int) -> int:
    """The per-round pairwise seed ``a_{i,j}^{(t)}``.

    Derived from the pair's long-term DH secret (modelled by ``base_seed``)
    and the round index, as deployed SecAgg implementations do to get
    per-round mask freshness.  Symmetric in (i, j).
    """
    lo, hi = (i, j) if i < j else (j, i)
    payload = f"{base_seed}:{lo}:{hi}:{round_index}".encode()
    return seed_from_bytes(payload)


def pairwise_masked_upload(
    gf: FiniteField,
    prg: PRG,
    user: int,
    num_users: int,
    update: np.ndarray,
    download_round: int,
    base_seed: int,
) -> np.ndarray:
    """User's SecAgg-style upload using *its own* round's pairwise seeds.

    Self-masks ``b_i`` are omitted (they are reconstructable and cancel in
    both settings); the pairwise terms are the ones whose cancellation
    asynchrony breaks.
    """
    update = gf.array(update)
    masked = update.copy()
    d = update.shape[0]
    for peer in range(num_users):
        if peer == user:
            continue
        seed = round_seed(base_seed, user, peer, download_round)
        mask = prg.expand(seed, d)
        if user < peer:
            masked = gf.add(masked, mask)
        else:
            masked = gf.sub(masked, mask)
    return masked


def attempt_async_pairwise_aggregation(
    gf: FiniteField,
    updates: Sequence[np.ndarray],
    download_rounds: Sequence[int],
    base_seed: int = 0,
    prg_backend: str = "pcg64",
) -> AsyncPairwiseOutcome:
    """Aggregate pairwise-masked uploads whose seeds come from the users'
    own (possibly different) download rounds.

    Models the buffered-async server of Appendix F.2: every buffered user
    is present (no dropouts), so in synchronous SecAgg all pairwise terms
    would cancel.  With mixed ``download_rounds`` they do not.
    """
    n = len(updates)
    if n < 2 or len(download_rounds) != n:
        raise ProtocolError("need >= 2 updates with one download round each")
    prg = PRG(gf, backend=prg_backend)
    dims = {np.asarray(u).shape for u in updates}
    if len(dims) != 1:
        raise ProtocolError("updates must share a shape")

    total_masked = gf.zeros(updates[0].shape[0])
    total_true = gf.zeros(updates[0].shape[0])
    for i in range(n):
        masked = pairwise_masked_upload(
            gf, prg, i, n, updates[i], download_rounds[i], base_seed
        )
        total_masked = gf.add(total_masked, masked)
        total_true = gf.add(total_true, updates[i])
    residue = gf.sub(total_masked, total_true)
    return AsyncPairwiseOutcome(
        aggregate_with_masks=total_masked,
        true_aggregate=total_true,
        residue=residue,
    )


def residue_matrix(
    gf: FiniteField,
    num_users: int,
    download_rounds: Sequence[int],
    dim: int,
    base_seed: int = 0,
) -> List[Tuple[int, int, bool]]:
    """Per-pair cancellation report: ``(i, j, cancelled)``.

    A pair cancels iff both endpoints used the same round's seed.  Useful
    for diagnosing which buffered combinations corrupt the sum.
    """
    prg = PRG(gf)
    out: List[Tuple[int, int, bool]] = []
    for i in range(num_users):
        for j in range(i + 1, num_users):
            si = round_seed(base_seed, i, j, download_rounds[i])
            sj = round_seed(base_seed, i, j, download_rounds[j])
            cancelled = np.array_equal(prg.expand(si, dim), prg.expand(sj, dim))
            out.append((i, j, cancelled))
    return out
