"""Theorem 2 — convergence-rate bound for asynchronous LightSecAgg.

The paper shows (eq. 39) that with constant learning rates satisfying
``eta_l * eta_g * K * E <= 1/L``, the ergodic squared-gradient norm after
``J`` buffered rounds is bounded by

    2 F* / (eta_g eta_l E K J)
  + L eta_g eta_l sigma_cl^2 / 2
  + 3 L^2 E^2 eta_l^2 eta_g^2 K^2 tau_max^2 sigma^2

with ``sigma^2 = G + sigma_g^2 + sigma_cl^2`` and
``sigma_cl^2 = d / (4 c_l^2) + sigma_l^2`` — i.e. FedBuff's rate plus the
quantization variance of Lemma 2.

This module evaluates the bound so experiments can (a) check knob
monotonicity (larger ``c_l`` -> tighter bound, up to the wrap-around
budget) and (b) verify the quantization term is negligible at the paper's
``c_l = 2^16`` (Remark 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ReproError


@dataclass(frozen=True)
class ConvergenceConstants:
    """Problem constants of Assumptions 1-5 and the algorithm knobs."""

    smoothness: float  # L (Assumption 2)
    initial_gap: float  # F* = F(x_0) - F(x*)
    grad_bound: float  # G (Assumption 4)
    local_variance: float  # sigma_l^2 (Assumption 3)
    global_variance: float  # sigma_g^2 (Assumption 3)
    model_dim: int  # d
    quant_levels: int  # c_l
    buffer_size: int  # K
    local_steps: int  # E
    tau_max: int  # staleness bound (Assumption 5)
    eta_local: float  # eta_l
    eta_global: float  # eta_g

    def __post_init__(self):
        for name in ("smoothness", "initial_gap", "eta_local", "eta_global"):
            if getattr(self, name) <= 0:
                raise ReproError(f"{name} must be positive")
        for name in ("grad_bound", "local_variance", "global_variance"):
            if getattr(self, name) < 0:
                raise ReproError(f"{name} must be non-negative")
        if min(self.model_dim, self.quant_levels, self.buffer_size,
               self.local_steps) <= 0 or self.tau_max < 0:
            raise ReproError("dimensional knobs must be positive")

    @property
    def sigma_cl_sq(self) -> float:
        """``sigma_cl^2 = d / (4 c_l^2) + sigma_l^2`` (Lemma 2)."""
        return self.model_dim / (4.0 * self.quant_levels**2) + self.local_variance

    @property
    def sigma_sq(self) -> float:
        """``sigma^2 = G + sigma_g^2 + sigma_cl^2`` (Theorem 2)."""
        return self.grad_bound + self.global_variance + self.sigma_cl_sq

    def learning_rates_feasible(self) -> bool:
        """The theorem's step-size condition ``eta_l eta_g K E <= 1/L``."""
        return (
            self.eta_local * self.eta_global * self.buffer_size
            * self.local_steps
            <= 1.0 / self.smoothness + 1e-12
        )


def convergence_bound(c: ConvergenceConstants, rounds: int) -> float:
    """Evaluate the RHS of eq. (39) after ``rounds`` buffered rounds."""
    if rounds <= 0:
        raise ReproError("rounds must be positive")
    if not c.learning_rates_feasible():
        raise ReproError(
            "step sizes violate eta_l * eta_g * K * E <= 1/L; the bound "
            "does not apply"
        )
    opt_term = 2.0 * c.initial_gap / (
        c.eta_global * c.eta_local * c.local_steps * c.buffer_size * rounds
    )
    quant_term = c.smoothness * c.eta_global * c.eta_local * c.sigma_cl_sq / 2.0
    staleness_term = (
        3.0
        * c.smoothness**2
        * c.local_steps**2
        * c.eta_local**2
        * c.eta_global**2
        * c.buffer_size**2
        * c.tau_max**2
        * c.sigma_sq
    )
    return opt_term + quant_term + staleness_term


def quantization_excess(c: ConvergenceConstants, rounds: int) -> float:
    """How much of the bound is attributable to quantization alone.

    The difference between the bound with ``sigma_cl^2`` and the FedBuff
    bound with ``sigma_l^2`` (paper Remark 6: vanishes for large c_l).
    """
    from dataclasses import replace

    unquantized = replace(c, quant_levels=1 << 62)
    return convergence_bound(c, rounds) - convergence_bound(unquantized, rounds)
