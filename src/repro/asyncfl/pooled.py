"""Pooled session for buffered-async secure aggregation.

The one-shot :class:`~repro.asyncfl.secure_aggregator.AsyncSecureAggregator`
re-encodes every delivery's mask inline, so a buffer drain pays the full
offline cost on the critical path.  :class:`BufferedShardSession` moves
that cost into the same precomputed pool machinery the synchronous
service path uses: one :class:`~repro.protocols.lightsecagg.session.
OfflineMaterial` (``N`` masks plus the full coded-share grid) serves one
*drain* instead of one synchronous round — delivery ``b`` of the buffer
is protected by pooled mask slot ``b``, and the holders' weighted
aggregated shares decode the weighted aggregate mask in one shot, exactly
as in the paper's Appendix F.

Why the pooled drain is bit-identical to the one-shot oracle even though
the masks differ: the field aggregate is

    ``sum_b w_b * (q_b + z_b)  -  decode(sum_b w_b * [~z_b])``

and MDS decoding is exactly linear in the shares, so the mask terms
cancel *exactly* (mod q) and the result is the canonical
``sum_b w_b * q_b`` for any choice of masks.  Only the ``(w_b, q_b)``
pairs carry randomness that reaches the aggregate, and those are drawn
by :func:`~repro.asyncfl.secure_aggregator.prepare_deliveries` — shared
with the oracle — from whatever rng the engine seeds.

Elastic membership re-keying lives here too: :meth:`rekey` rebuilds the
protocol geometry for a new member count, invalidates the pooled
material (it was encoded for the old ``N``), and leaves warm re-encoding
to the service's background refiller.
"""

from __future__ import annotations

from typing import Optional, Set

import numpy as np

from repro.coding.mask_encoding import MaskEncoder
from repro.exceptions import DropoutError, ProtocolError
from repro.protocols.base import (
    SERVER,
    AggregationResult,
    RoundMetrics,
    Transcript,
)
from repro.protocols.lightsecagg.session import LightSecAggSession


class BufferedShardSession(LightSecAggSession):
    """Pooled LightSecAgg session drained by weighted async buffers.

    The synchronous ``run_round`` surface is inherited unchanged (useful
    for warm-up checks), but the session's real job is :meth:`drain`:
    aggregate ``B <= N`` buffered deliveries under public integer
    staleness weights, spending one pooled round of offline material.
    """

    @property
    def supports_drains(self) -> bool:
        return True

    def drain(
        self,
        weights,
        updates: np.ndarray,
        recovery_dropouts: Optional[Set[int]] = None,
    ) -> AggregationResult:
        """One buffer drain: weighted secure aggregation of ``B`` updates.

        Parameters
        ----------
        weights:
            ``(B,)`` positive integer staleness weights, one per buffered
            delivery in arrival order.  Zero-weight deliveries must be
            filtered out by the caller (they contribute nothing and would
            waste a mask slot).
        updates:
            ``(B, model_dim)`` uint64 matrix of *unweighted* quantized
            updates, row ``b`` = delivery ``b``.  Row order is
            load-bearing: delivery ``b`` consumes pooled mask slot ``b``.
        recovery_dropouts:
            Member slots (``0..N-1``) that do not answer the recovery
            phase; at least ``U`` must remain.

        Returns the usual :class:`AggregationResult` whose aggregate is
        the exact field value ``sum_b w_b * updates_b (mod q)`` —
        independent of which pooled masks were spent, which is what makes
        the drain bit-identical across transports and across re-keys.
        """
        self._require_open()
        recovery_dropouts = set(recovery_dropouts or set())
        weights = np.asarray(weights, dtype=np.uint64)
        updates = np.asarray(updates, dtype=np.uint64)
        if weights.ndim != 1 or weights.size == 0:
            raise ProtocolError("drain needs a non-empty 1-D weight vector")
        batch = int(weights.size)
        if updates.shape != (batch, self.model_dim):
            raise ProtocolError(
                f"drain updates shape {updates.shape} != "
                f"({batch}, {self.model_dim})"
            )
        if np.any(weights == 0):
            raise ProtocolError(
                "drain weights must be positive; filter zero-weight "
                "deliveries before draining"
            )
        n = self.params.num_users
        if batch > n:
            raise ProtocolError(
                f"drain of {batch} deliveries exceeds the {n} mask slots "
                "of one pooled round"
            )
        bad = recovery_dropouts - set(range(n))
        if bad:
            raise ProtocolError(
                f"recovery dropout slots {sorted(bad)} out of range"
            )
        responders_all = [j for j in range(n) if j not in recovery_dropouts]
        u = self.params.target_survivors
        if len(responders_all) < u:
            raise DropoutError(
                f"only {len(responders_all)} recovery responders, need "
                f"U={u}"
            )
        material = self._take_material()

        gf = self.gf
        share_dim = self.encoder.share_dim
        transcript = Transcript()
        w = gf.array(weights)

        # Upload: each delivery arrives masked by its slot's pooled mask;
        # the server applies the public weight in-field.
        masked = gf.add(updates, material.masks[:batch])
        masked_sum = gf.sum(gf.mul(masked, w[:, None]), axis=0)
        for b in range(batch):
            transcript.record(b, SERVER, "upload", self.model_dim)

        # Recovery: the first U responders send their weighted aggregated
        # shares; one-shot decode of the weighted aggregate mask.  The
        # decode is linear, so decode(sum_b w_b [~z_b]) = sum_b w_b z_b.
        responders = responders_all[:u]
        grid = material.coded[:batch][:, responders]  # (B, U, share_dim)
        agg_shares = gf.sum(gf.mul(grid, w[:, None, None]), axis=0)
        for j in responders:
            transcript.record(j, SERVER, "recovery", share_dim)
        agg_mask = self.encoder.decode_aggregate(
            {j: agg_shares[r] for r, j in enumerate(responders)}
        )
        aggregate = gf.sub(masked_sum, agg_mask)

        metrics = RoundMetrics(
            server_decode_ops=u * u * share_dim,
            server_prg_elements=0,
            user_encode_ops=0,
            extra={
                "pool_level": float(len(self._pool)),
                "amortized_encode_ops": float(n * u * share_dim),
                "drain_batch": float(batch),
            },
        )
        self.stats.rounds += 1
        return AggregationResult(
            aggregate=aggregate,
            survivors=responders_all,
            transcript=transcript,
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    def rekey(self, num_users: int) -> int:
        """Re-key the session for a new member count.

        Rebuilds the protocol geometry (``U`` re-derived from the same
        ``(T, D)`` guarantees, so any party can reproduce the parameters
        from ``num_users`` alone), swaps in a fresh encoder, and drops
        the pooled material — it was encoded for the old member set and
        its share grid no longer matches.  Returns the number of pooled
        rounds invalidated; re-encoding is intentionally *not* done here
        so a background refiller can warm the pool off the drain path.

        Serialized against refills under ``_refill_lock`` so a refill in
        flight lands (and is discarded) atomically relative to the swap,
        never half-encoded for a stale geometry.
        """
        from repro.protocols.lightsecagg.params import LSAParams
        from repro.protocols.lightsecagg.protocol import LightSecAgg

        self._require_open()
        with self._refill_lock:
            params = LSAParams.from_guarantees(
                num_users,
                privacy=self.params.privacy,
                dropout_tolerance=self.params.dropout_tolerance,
            )
            protocol = LightSecAgg(
                self.gf, params, self.model_dim,
                generator=self.protocol.generator,
            )
            encoder = MaskEncoder(
                self.gf,
                num_users=params.num_users,
                target_survivors=params.target_survivors,
                privacy=params.privacy,
                model_dim=self.model_dim,
                generator=protocol.generator,
            )
            with self._pool_lock:
                invalidated = len(self._pool)
                self._pool.clear()
                self.protocol = protocol
                self.params = params
                self.encoder = encoder
        return invalidated
