"""Vandermonde matrices and Lagrange interpolation over GF(q).

These are the algebraic building blocks of the paper's mask encoding
(eq. 5 / eq. 28): a ``U x N`` Vandermonde matrix ``W`` is an MDS generator
(any ``U`` columns are invertible because the evaluation points are
distinct), and decoding from any ``U`` coded symbols is polynomial
interpolation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import FieldError
from repro.field.arithmetic import FiniteField


def distinct_points(gf: FiniteField, count: int, start: int = 1) -> np.ndarray:
    """``count`` distinct nonzero evaluation points ``start, start+1, ...``.

    Raises when the field is too small to supply that many distinct points.
    """
    if count < 0:
        raise FieldError("count must be non-negative")
    if start + count > gf.q:
        raise FieldError(
            f"field of size {gf.q} cannot supply {count} points from {start}"
        )
    return gf.array(np.arange(start, start + count, dtype=np.int64))


def vandermonde(gf: FiniteField, points: Sequence[int], nrows: int) -> np.ndarray:
    """Vandermonde matrix ``V[i, j] = points[j] ** i`` of shape (nrows, len(points)).

    With distinct points, any ``nrows`` columns form an invertible square
    Vandermonde matrix, so the matrix is MDS.
    """
    pts = gf.array(points)
    if pts.ndim != 1:
        raise FieldError("points must be 1-D")
    if len(set(pts.tolist())) != pts.size:
        raise FieldError("Vandermonde points must be distinct")
    rows = [gf.ones(pts.shape)]
    for _ in range(1, nrows):
        rows.append(gf.mul(rows[-1], pts))
    return np.stack(rows, axis=0)


def lagrange_coeffs(
    gf: FiniteField, sample_points: Sequence[int], eval_points: Sequence[int]
) -> np.ndarray:
    """Lagrange interpolation coefficient matrix ``L`` over GF(q).

    Given samples ``f(sample_points[k])`` of a polynomial with
    ``deg f < len(sample_points)``, the values at ``eval_points`` are
    ``L @ samples`` where ``L[m, k] = prod_{l != k} (e_m - s_l) / (s_k - s_l)``.

    Shape: ``(len(eval_points), len(sample_points))``.
    """
    s = gf.array(sample_points)
    e = gf.array(eval_points)
    if s.ndim != 1 or e.ndim != 1:
        raise FieldError("points must be 1-D")
    if len(set(s.tolist())) != s.size:
        raise FieldError("sample points must be distinct")
    u = s.size
    q64 = np.uint64(gf.q)
    # diffs[k, l] = s_k - s_l ; denominators d_k = prod_{l != k} (s_k - s_l)
    diffs = np.mod(s[:, None] + (q64 - s[None, :]), q64)
    np.fill_diagonal(diffs, np.uint64(1))
    denom = np.ones(u, dtype=np.uint64)
    for l in range(u):
        denom = np.mod(denom * diffs[:, l], q64)
    inv_denom = gf.inv(denom)
    # numerators: num[m, k] = prod_{l != k} (e_m - s_l)
    ediffs = np.mod(e[:, None] + (q64 - s[None, :]), q64)  # (m, l)
    coeffs = np.empty((e.size, u), dtype=np.uint64)
    for k in range(u):
        cols = np.concatenate([ediffs[:, :k], ediffs[:, k + 1:]], axis=1)
        num = np.ones(e.size, dtype=np.uint64)
        for l in range(cols.shape[1]):
            num = np.mod(num * cols[:, l], q64)
        coeffs[:, k] = np.mod(num * inv_denom[k], q64)
    return coeffs


def interpolate(
    gf: FiniteField,
    sample_points: Sequence[int],
    samples: np.ndarray,
    eval_points: Sequence[int],
) -> np.ndarray:
    """Evaluate the interpolating polynomial of ``samples`` at ``eval_points``.

    ``samples`` may be a vector (one value per sample point) or a matrix of
    shape ``(len(sample_points), width)`` interpolating ``width`` polynomials
    simultaneously.
    """
    coeffs = lagrange_coeffs(gf, sample_points, eval_points)
    samples = gf.array(samples)
    if samples.ndim == 1:
        return gf.matvec(coeffs, samples)
    return gf.matmul(coeffs, samples)
