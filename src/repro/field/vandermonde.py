"""Vandermonde matrices and Lagrange interpolation over GF(q).

These are the algebraic building blocks of the paper's mask encoding
(eq. 5 / eq. 28): a ``U x N`` Vandermonde matrix ``W`` is an MDS generator
(any ``U`` columns are invertible because the evaluation points are
distinct), and decoding from any ``U`` coded symbols is polynomial
interpolation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import FieldError
from repro.field.arithmetic import FiniteField


def distinct_points(gf: FiniteField, count: int, start: int = 1) -> np.ndarray:
    """``count`` distinct nonzero evaluation points ``start, start+1, ...``.

    Raises when the field is too small to supply that many distinct points.
    """
    if count < 0:
        raise FieldError("count must be non-negative")
    if start + count > gf.q:
        raise FieldError(
            f"field of size {gf.q} cannot supply {count} points from {start}"
        )
    return gf.array(np.arange(start, start + count, dtype=np.int64))


def vandermonde(gf: FiniteField, points: Sequence[int], nrows: int) -> np.ndarray:
    """Vandermonde matrix ``V[i, j] = points[j] ** i`` of shape (nrows, len(points)).

    With distinct points, any ``nrows`` columns form an invertible square
    Vandermonde matrix, so the matrix is MDS.
    """
    pts = gf.array(points)
    if pts.ndim != 1:
        raise FieldError("points must be 1-D")
    if len(set(pts.tolist())) != pts.size:
        raise FieldError("Vandermonde points must be distinct")
    rows = [gf.ones(pts.shape)]
    for _ in range(1, nrows):
        rows.append(gf.mul(rows[-1], pts))
    return np.stack(rows, axis=0)


def _row_products(gf: FiniteField, mat: np.ndarray) -> np.ndarray:
    """Reduced product along axis 1 of a 2-D field array, by pairwise tree.

    Halving the column axis each round turns the naive O(c) sequence of
    per-column multiplies into O(log c) whole-array reducer ops; the
    result is the canonical residue either way.
    """
    prod = mat
    while prod.shape[1] > 1:
        half = prod.shape[1] // 2
        tail = prod[:, 2 * half :]  # zero or one leftover column
        prod = gf.mul(prod[:, : 2 * half : 2], prod[:, 1 : 2 * half : 2])
        if tail.shape[1]:
            prod = np.concatenate([prod, tail], axis=1)
    if prod.shape[1] == 0:
        return np.ones(prod.shape[0], dtype=np.uint64)
    return prod[:, 0]


def _exclusive_products(gf: FiniteField, mat: np.ndarray) -> np.ndarray:
    """``out[:, k] = prod_{l != k} mat[:, l]`` (reduced), zero-safe.

    Prefix/suffix scans replace the O(c**2) per-column Python loops with
    O(c) whole-column reducer ops; unlike the divide-by-total trick this
    stays exact when a column contains zeros (an eval point that
    coincides with a sample point).
    """
    r, c = mat.shape
    if c == 0:
        return np.empty((r, 0), dtype=np.uint64)
    prefix = np.empty((r, c), dtype=np.uint64)
    suffix = np.empty((r, c), dtype=np.uint64)
    prefix[:, 0] = 1
    suffix[:, c - 1] = 1
    for k in range(1, c):
        prefix[:, k] = gf.mul(prefix[:, k - 1], mat[:, k - 1])
        suffix[:, c - 1 - k] = gf.mul(suffix[:, c - k], mat[:, c - k])
    return gf.mul(prefix, suffix)


def lagrange_coeffs(
    gf: FiniteField, sample_points: Sequence[int], eval_points: Sequence[int]
) -> np.ndarray:
    """Lagrange interpolation coefficient matrix ``L`` over GF(q).

    Given samples ``f(sample_points[k])`` of a polynomial with
    ``deg f < len(sample_points)``, the values at ``eval_points`` are
    ``L @ samples`` where ``L[m, k] = prod_{l != k} (e_m - s_l) / (s_k - s_l)``.

    Shape: ``(len(eval_points), len(sample_points))``.
    """
    s = gf.array(sample_points)
    e = gf.array(eval_points)
    if s.ndim != 1 or e.ndim != 1:
        raise FieldError("points must be 1-D")
    if len(set(s.tolist())) != s.size:
        raise FieldError("sample points must be distinct")
    u = s.size
    # diffs[k, l] = s_k - s_l ; denominators d_k = prod_{l != k} (s_k - s_l)
    diffs = gf.sub(s[:, None], s[None, :])
    np.fill_diagonal(diffs, np.uint64(1))
    inv_denom = gf.inv(_row_products(gf, diffs))
    # numerators: num[m, k] = prod_{l != k} (e_m - s_l)
    ediffs = gf.sub(e[:, None], s[None, :])  # (m, l)
    return gf.mul(_exclusive_products(gf, ediffs), inv_denom[None, :])


def interpolate(
    gf: FiniteField,
    sample_points: Sequence[int],
    samples: np.ndarray,
    eval_points: Sequence[int],
) -> np.ndarray:
    """Evaluate the interpolating polynomial of ``samples`` at ``eval_points``.

    ``samples`` may be a vector (one value per sample point) or a matrix of
    shape ``(len(sample_points), width)`` interpolating ``width`` polynomials
    simultaneously.
    """
    coeffs = lagrange_coeffs(gf, sample_points, eval_points)
    samples = gf.array(samples)
    if samples.ndim == 1:
        return gf.matvec(coeffs, samples)
    return gf.matmul(coeffs, samples)
