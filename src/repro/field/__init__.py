"""Finite-field substrate: GF(q) arithmetic, linear algebra, Vandermonde tools."""

from repro.field.arithmetic import FiniteField
from repro.field.prime import (
    DEFAULT_PRIME,
    MAX_UINT64_SAFE_MODULUS,
    PAPER_PRIME,
    is_prime,
    next_prime,
    previous_prime,
    validate_modulus,
)
from repro.field.reduce import (
    REDUCER_ENV,
    BarrettReducer,
    MersenneReducer,
    NumpyModReducer,
    Reducer,
    available_reducer_kinds,
    mersenne_exponent,
    select_reducer,
)
from repro.field.linalg import det, inv, is_invertible, is_mds, rank, solve
from repro.field.vandermonde import (
    distinct_points,
    interpolate,
    lagrange_coeffs,
    vandermonde,
)

__all__ = [
    "FiniteField",
    "Reducer",
    "MersenneReducer",
    "BarrettReducer",
    "NumpyModReducer",
    "REDUCER_ENV",
    "available_reducer_kinds",
    "mersenne_exponent",
    "select_reducer",
    "DEFAULT_PRIME",
    "PAPER_PRIME",
    "MAX_UINT64_SAFE_MODULUS",
    "is_prime",
    "next_prime",
    "previous_prime",
    "validate_modulus",
    "solve",
    "inv",
    "det",
    "rank",
    "is_invertible",
    "is_mds",
    "vandermonde",
    "lagrange_coeffs",
    "interpolate",
    "distinct_points",
]
