"""Vectorized arithmetic over the prime field GF(q).

The central object is :class:`FiniteField`.  Field elements are represented
as ``numpy.uint64`` arrays whose entries are *reduced residues* in
``[0, q)``; every public method returns arrays satisfying that contract and
accepts arbitrary integer arrays (which are reduced on entry).

All binary operations are elementwise-vectorized.  Because the modulus is
validated to be below ``2**32`` (:func:`repro.field.prime.validate_modulus`),
the product of two reduced residues fits exactly in uint64, so
``(a * b) % q`` in uint64 never overflows.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

from repro.exceptions import FieldError
from repro.field.prime import DEFAULT_PRIME, validate_modulus

ArrayLike = Union[int, Iterable[int], np.ndarray]


class FiniteField:
    """The prime field GF(q) with vectorized numpy arithmetic.

    Parameters
    ----------
    q:
        A prime modulus below ``2**32``.  Defaults to the Mersenne prime
        ``2**31 - 1``.

    Examples
    --------
    >>> gf = FiniteField()
    >>> int(gf.mul(gf.array(3), gf.array(5)))
    15
    >>> int(gf.inv(gf.array(2)))  # (q+1)//2
    1073741824
    """

    __slots__ = ("q", "_q64")

    def __init__(self, q: int = DEFAULT_PRIME):
        self.q: int = validate_modulus(q)
        self._q64 = np.uint64(self.q)

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    def array(self, values: ArrayLike) -> np.ndarray:
        """Convert integers to reduced residues as a uint64 array.

        Negative inputs are mapped to their canonical representatives, e.g.
        ``-1`` becomes ``q - 1``.
        """
        arr = np.asarray(values)
        if arr.dtype == np.uint64:
            return np.mod(arr, self._q64)
        if not np.issubdtype(arr.dtype, np.integer):
            raise FieldError(
                f"field elements must be integers, got dtype {arr.dtype}"
            )
        # Python-int mod handles negatives correctly; numpy signed mod with a
        # positive modulus also yields non-negative results.
        reduced = np.mod(arr.astype(object) if arr.dtype.itemsize > 8 else arr, self.q)
        return reduced.astype(np.uint64)

    def zeros(self, shape) -> np.ndarray:
        """All-zero field array of the given shape."""
        return np.zeros(shape, dtype=np.uint64)

    def ones(self, shape) -> np.ndarray:
        """All-one field array of the given shape."""
        return np.ones(shape, dtype=np.uint64)

    def is_valid(self, a: np.ndarray) -> bool:
        """True when ``a`` is a uint64 array of reduced residues."""
        return (
            isinstance(a, np.ndarray)
            and a.dtype == np.uint64
            and (a.size == 0 or bool(np.all(a < self._q64)))
        )

    def to_signed(self, a: np.ndarray) -> np.ndarray:
        """Interpret residues as signed integers in ``(-q/2, q/2]``.

        This is the inverse of the two's-complement embedding used by the
        quantizer (paper eq. 36): residues above ``(q-1)/2`` map to negative
        integers.
        """
        a = self.array(a)
        half = (self.q - 1) // 2
        signed = a.astype(np.int64)
        signed[a > half] -= self.q
        return signed

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    def add(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Elementwise ``a + b (mod q)``."""
        a = self.array(a)
        b = self.array(b)
        return np.mod(a + b, self._q64)

    def sub(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Elementwise ``a - b (mod q)``."""
        a = self.array(a)
        b = self.array(b)
        return np.mod(a + (self._q64 - b), self._q64)

    def neg(self, a: ArrayLike) -> np.ndarray:
        """Elementwise additive inverse ``-a (mod q)``."""
        a = self.array(a)
        return np.mod(self._q64 - a, self._q64)

    def mul(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Elementwise ``a * b (mod q)``; exact because q < 2**32."""
        a = self.array(a)
        b = self.array(b)
        return np.mod(a * b, self._q64)

    def pow(self, a: ArrayLike, e: int) -> np.ndarray:
        """Elementwise ``a ** e (mod q)`` by binary exponentiation.

        Negative exponents are supported via Fermat inversion, and require
        every base to be nonzero.
        """
        a = self.array(a)
        if e < 0:
            a = self.inv(a)
            e = -e
        result = np.ones_like(a)
        base = a.copy()
        while e:
            if e & 1:
                result = np.mod(result * base, self._q64)
            base = np.mod(base * base, self._q64)
            e >>= 1
        return result

    def inv(self, a: ArrayLike) -> np.ndarray:
        """Elementwise multiplicative inverse via Fermat's little theorem."""
        a = self.array(a)
        if a.size and np.any(a == 0):
            raise FieldError("zero has no multiplicative inverse")
        return self.pow(a, self.q - 2)

    def div(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Elementwise ``a / b (mod q)``."""
        return self.mul(a, self.inv(b))

    # ------------------------------------------------------------------
    # reductions / linear algebra helpers
    # ------------------------------------------------------------------
    def sum(self, a: ArrayLike, axis: Optional[int] = None) -> np.ndarray:
        """Field sum along an axis.

        Sums are computed in Python-object space only when overflow is
        possible; for typical sizes a chunked uint64 accumulation is exact:
        we reduce every ``2**31`` additions, far below any realistic chunk.
        """
        a = self.array(a)
        # Each residue < 2**32, so up to 2**32 terms can be accumulated in
        # uint64 without overflow.  numpy sums of that length are infeasible
        # in memory anyway, so a single np.sum is always exact here.
        total = np.sum(a, axis=axis, dtype=np.uint64)
        return np.mod(total, self._q64)

    def dot(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Inner product of two 1-D field arrays."""
        a = self.array(a)
        b = self.array(b)
        if a.shape != b.shape or a.ndim != 1:
            raise FieldError("dot requires two 1-D arrays of equal length")
        return self.sum(self.mul(a, b))

    # Width-axis blocking for matmul: the rank-1 accumulation below makes
    # k passes over the (m, n) accumulator, so once a row block exceeds
    # cache, every pass streams it from DRAM.  Bounding the per-block
    # accumulator + operand footprint to ~2 MiB of uint64 keeps all k
    # passes cache-resident, which is what makes large-width offline
    # refills ((N, U) @ (U, K*N*share_dim) in MaskEncoder.encode_batch)
    # compute-bound instead of memory-bound.
    MATMUL_BLOCK_ELEMS = 1 << 18

    def matmul(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Matrix product over GF(q), blocked over the width axis.

        Products are reduced elementwise before accumulation; the
        accumulation itself is exact in uint64 as argued in :meth:`sum`.
        For typical coded-computing shapes (tall-skinny times small square)
        a rank-1 accumulation over reduced products is both exact and
        fast, and blocking the width axis keeps it cache-resident at the
        large widths a batched offline refill produces.
        """
        a = self.array(a)
        b = self.array(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise FieldError(f"incompatible matmul shapes {a.shape} x {b.shape}")
        m, k = a.shape
        n = b.shape[1]
        out = np.empty((m, n), dtype=np.uint64)
        width_block = max(1, self.MATMUL_BLOCK_ELEMS // max(m, 1))
        for col in range(0, n, width_block):
            self._matmul_block(a, b[:, col : col + width_block],
                               out[:, col : col + width_block])
        return out

    def _matmul_block(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
        """One width block of :meth:`matmul`, written into ``out``."""
        k = a.shape[1]
        out[:] = 0
        if k <= 256:
            # Short contraction axis (the coded-computing common case):
            # accumulate one rank-1 product at a time, keeping the
            # working set at O(m * width_block) instead of materializing
            # the full (m, k, n) product tensor.  Reduction is *lazy*:
            # each raw product of reduced residues is < (q-1)**2, so
            # ``batch`` of them accumulate exactly in uint64 before one
            # shared ``np.mod`` — integer division dominates this kernel,
            # and for the default q = 2**31 - 1 this cuts it 4x.  The
            # outer accumulator then holds one reduced (< q) term per
            # batch, at most 256 of them, far from overflow.
            batch = ((1 << 64) - 1) // ((self.q - 1) ** 2)
            if batch < 2:
                for kk in range(k):
                    out += np.mod(a[:, kk, None] * b[None, kk, :], self._q64)
            else:
                for start in range(0, k, batch):
                    acc = a[:, start, None] * b[None, start, :]
                    for kk in range(start + 1, min(start + batch, k)):
                        acc += a[:, kk, None] * b[None, kk, :]
                    out += np.mod(acc, self._q64, out=acc)
            np.mod(out, self._q64, out=out)
            return
        # Long contraction axis: chunk it so uint64 accumulation cannot
        # overflow; products are reduced (mod q) before accumulation, so
        # each term < 2**32 and up to 2**32 terms fit.
        step = 4096
        for start in range(0, k, step):
            stop = min(start + step, k)
            prod = np.mod(
                a[:, start:stop, None] * b[None, start:stop, :], self._q64
            )
            np.mod(
                out + np.sum(prod, axis=1, dtype=np.uint64), self._q64, out=out
            )

    def matvec(self, a: ArrayLike, x: ArrayLike) -> np.ndarray:
        """Matrix-vector product over GF(q)."""
        x = self.array(x)
        if x.ndim != 1:
            raise FieldError("matvec requires a 1-D vector")
        return self.matmul(a, x[:, None])[:, 0]

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    def random(self, shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Uniformly random field elements of the given shape."""
        rng = rng if rng is not None else np.random.default_rng()
        return rng.integers(0, self.q, size=shape, dtype=np.uint64)

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, FiniteField) and other.q == self.q

    def __hash__(self) -> int:
        return hash(("FiniteField", self.q))

    def __repr__(self) -> str:
        return f"FiniteField(q={self.q})"
