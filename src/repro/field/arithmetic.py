"""Vectorized arithmetic over the prime field GF(q).

The central object is :class:`FiniteField`.  Field elements are represented
as ``numpy.uint64`` arrays whose entries are *reduced residues* in
``[0, q)``; every public method returns arrays satisfying that contract and
accepts arbitrary integer arrays (which are reduced on entry).

All binary operations are elementwise-vectorized.  Because the modulus is
validated to be below ``2**32`` (:func:`repro.field.prime.validate_modulus`),
the product of two reduced residues fits exactly in uint64, so
``(a * b) % q`` in uint64 never overflows.

Reduction itself is delegated to a :class:`repro.field.reduce.Reducer`
strategy chosen at construction (Mersenne shift-fold for ``q = 2**k - 1``,
Barrett for general ``q``, or the ``np.mod`` oracle) — see
:mod:`repro.field.reduce` and the ``REPRO_FIELD_REDUCER`` env override.
With a division-free reducer selected, :meth:`FiniteField.matmul` runs a
16-bit limb-split kernel over float64 BLAS with fold-based lazy
accumulation; with the oracle it runs the historical lazy-``np.mod``
rank-1 kernel, preserved byte-for-byte as the A/B baseline.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

from repro.exceptions import FieldError
from repro.field.prime import DEFAULT_PRIME, validate_modulus
from repro.field.reduce import Reducer, select_reducer

ArrayLike = Union[int, Iterable[int], np.ndarray]

_U64_MAX = (1 << 64) - 1
#: Largest integer float64 accumulates exactly (2**53).
_F64_EXACT = 1 << 53
_SHIFT16 = np.uint64(16)
_MASK16 = np.uint64(0xFFFF)


class FiniteField:
    """The prime field GF(q) with vectorized numpy arithmetic.

    Parameters
    ----------
    q:
        A prime modulus below ``2**32``.  Defaults to the Mersenne prime
        ``2**31 - 1``.
    reducer:
        Reduction-kernel selection: ``"auto"`` (default; Mersenne when the
        modulus allows, Barrett otherwise), ``"mersenne"``, ``"barrett"``,
        or ``"numpy_mod"``.  ``None`` consults the ``REPRO_FIELD_REDUCER``
        environment variable before falling back to ``"auto"``.

    Examples
    --------
    >>> gf = FiniteField()
    >>> int(gf.mul(gf.array(3), gf.array(5)))
    15
    >>> int(gf.inv(gf.array(2)))  # (q+1)//2
    1073741824
    """

    __slots__ = ("q", "_q64", "reducer")

    def __init__(self, q: int = DEFAULT_PRIME, reducer: Optional[str] = None):
        self.q: int = validate_modulus(q)
        self._q64 = np.uint64(self.q)
        self.reducer: Reducer = select_reducer(self.q, reducer)

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    def array(self, values: ArrayLike) -> np.ndarray:
        """Convert integers to reduced residues as a uint64 array.

        Negative inputs are mapped to their canonical representatives, e.g.
        ``-1`` becomes ``q - 1``.
        """
        arr = np.asarray(values)
        if arr.dtype == np.uint64:
            # reduce() always allocates a fresh buffer (np.mod semantics).
            return self.reducer.reduce(arr)
        if not np.issubdtype(arr.dtype, np.integer):
            raise FieldError(
                f"field elements must be integers, got dtype {arr.dtype}"
            )
        # Python-int mod handles negatives correctly; numpy signed mod with a
        # positive modulus also yields non-negative results.
        reduced = np.mod(arr.astype(object) if arr.dtype.itemsize > 8 else arr, self.q)
        return reduced.astype(np.uint64)

    def zeros(self, shape) -> np.ndarray:
        """All-zero field array of the given shape."""
        return np.zeros(shape, dtype=np.uint64)

    def ones(self, shape) -> np.ndarray:
        """All-one field array of the given shape."""
        return np.ones(shape, dtype=np.uint64)

    def is_valid(self, a: np.ndarray) -> bool:
        """True when ``a`` is a uint64 array of reduced residues."""
        return (
            isinstance(a, np.ndarray)
            and a.dtype == np.uint64
            and (a.size == 0 or bool(np.all(a < self._q64)))
        )

    def to_signed(self, a: np.ndarray) -> np.ndarray:
        """Interpret residues as signed integers in ``(-q/2, q/2]``.

        This is the inverse of the two's-complement embedding used by the
        quantizer (paper eq. 36): residues above ``(q-1)/2`` map to negative
        integers.
        """
        a = self.array(a)
        half = (self.q - 1) // 2
        signed = a.astype(np.int64)
        signed[a > half] -= self.q
        return signed

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    def add(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Elementwise ``a + b (mod q)``."""
        a = self.array(a)
        b = self.array(b)
        return self.reducer.reduce_semi(a + b)

    def sub(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Elementwise ``a - b (mod q)``."""
        a = self.array(a)
        b = self.array(b)
        return self.reducer.reduce_semi(a + (self._q64 - b))

    def neg(self, a: ArrayLike) -> np.ndarray:
        """Elementwise additive inverse ``-a (mod q)``."""
        a = self.array(a)
        return self.reducer.reduce_semi(self._q64 - a)

    def mul(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Elementwise ``a * b (mod q)``; exact because q < 2**32."""
        a = self.array(a)
        b = self.array(b)
        return self.reducer.reduce(a * b)

    def pow(self, a: ArrayLike, e: int) -> np.ndarray:
        """Elementwise ``a ** e (mod q)`` by binary exponentiation.

        Negative exponents are supported via Fermat's little theorem
        (``a**(q-1) == 1`` for nonzero ``a``): the exponent is mapped to
        its representative in ``[0, q-1)`` and a *single* binary
        exponentiation runs — not an inversion pass (31 squarings for the
        default modulus) followed by a second exponentiation.  Negative
        exponents require every base to be nonzero.
        """
        a = self.array(a)
        if e < 0:
            if a.size and np.any(a == 0):
                raise FieldError("zero has no multiplicative inverse")
            e = e % (self.q - 1)
        red = self.reducer
        result = np.ones_like(a)
        base = a.copy()
        while e:
            if e & 1:
                result = red.reduce(result * base)
            e >>= 1
            if e:
                base = red.reduce(base * base)
        return result

    def inv(self, a: ArrayLike) -> np.ndarray:
        """Elementwise multiplicative inverse via Fermat's little theorem."""
        a = self.array(a)
        if a.size and np.any(a == 0):
            raise FieldError("zero has no multiplicative inverse")
        return self.pow(a, self.q - 2)

    def div(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Elementwise ``a / b (mod q)``."""
        return self.mul(a, self.inv(b))

    # ------------------------------------------------------------------
    # reductions / linear algebra helpers
    # ------------------------------------------------------------------
    def sum(self, a: ArrayLike, axis: Optional[int] = None) -> np.ndarray:
        """Field sum along an axis.

        Sums are computed in Python-object space only when overflow is
        possible; for typical sizes a chunked uint64 accumulation is exact:
        we reduce every ``2**31`` additions, far below any realistic chunk.
        """
        a = self.array(a)
        # Each residue < 2**32, so up to 2**32 terms can be accumulated in
        # uint64 without overflow.  numpy sums of that length are infeasible
        # in memory anyway, so a single np.sum is always exact here.
        total = np.sum(a, axis=axis, dtype=np.uint64)
        return self.reducer.reduce(total)

    def dot(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Inner product of two 1-D field arrays."""
        a = self.array(a)
        b = self.array(b)
        if a.shape != b.shape or a.ndim != 1:
            raise FieldError("dot requires two 1-D arrays of equal length")
        return self.sum(self.mul(a, b))

    # Width-axis blocking for matmul: the rank-1 accumulation below makes
    # k passes over the (m, n) accumulator, so once a row block exceeds
    # cache, every pass streams it from DRAM.  Bounding the per-block
    # accumulator + operand footprint to ~2 MiB of uint64 keeps all k
    # passes cache-resident, which is what makes large-width offline
    # refills ((N, U) @ (U, K*N*share_dim) in MaskEncoder.encode_batch)
    # compute-bound instead of memory-bound.
    MATMUL_BLOCK_ELEMS = 1 << 18

    # Width-block budget for the limb-split float64 kernel: the f64
    # operand block (k rows) plus two f64 product blocks (m rows each)
    # are bounded by ~3 * this many elements.  Bigger blocks amortize
    # the per-block conversion and BLAS call overhead; this setting
    # measured fastest at the refill shape on the dev container.
    MATMUL_F64_BLOCK_ELEMS = 1 << 21

    def matmul(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Matrix product over GF(q).

        With a division-free reducer (the default), products run through
        a 16-bit limb-split kernel: each operand column block is lifted
        to float64, two BLAS GEMMs compute the exact high/low limb
        contractions (every partial sum stays below ``2**53``, so the
        float arithmetic is exact and bit-reproducible), and the limbs
        are recombined in uint64 with fold-based lazy accumulation — no
        integer division anywhere.  With the ``numpy_mod`` oracle
        reducer the historical width-blocked lazy-``np.mod`` rank-1
        kernel runs instead, preserved as the A/B baseline.  Both paths
        return identical canonical residues.
        """
        a = self.array(a)
        b = self.array(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise FieldError(f"incompatible matmul shapes {a.shape} x {b.shape}")
        m, k = a.shape
        n = b.shape[1]
        out = np.empty((m, n), dtype=np.uint64)
        if self.reducer.division_free:
            self._matmul_limbsplit(a, b, out)
            return out
        width_block = max(1, self.MATMUL_BLOCK_ELEMS // max(m, 1))
        for col in range(0, n, width_block):
            self._matmul_block(a, b[:, col : col + width_block],
                               out[:, col : col + width_block])
        return out

    def _matmul_limbsplit(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
        """Exact 16-bit limb-split GEMM over float64, reduced division-free.

        ``a`` is split as ``a = a_hi * 2**16 + a_lo``; for a contraction
        chunk of ``s`` terms the float64 products satisfy
        ``s * max(a_limb) * (q-1) <= 2**53``, so both GEMMs are exact
        integer arithmetic in float64.  Chunk results are recombined as
        ``(reduce(c_hi) << 16) + c_lo`` (< 2**54) and lazily accumulated
        in uint64, with one reducer *fold* between chunks to stay clear
        of overflow — the fold-based accumulator that replaces the old
        per-term-division branch for moduli near ``2**32``.
        """
        red = self.reducer
        m, k = a.shape
        n = b.shape[1]
        qm1 = self.q - 1
        hi_max = qm1 >> 16
        lo_max = min(qm1, 0xFFFF)
        # Largest exact contraction chunk per limb (at least 32 for any
        # q < 2**32; one chunk covers typical coded-computing shapes).
        step = k or 1
        if lo_max:
            step = min(step, _F64_EXACT // (lo_max * qm1))
        if hi_max:
            step = min(step, _F64_EXACT // (hi_max * qm1))
        step = max(1, step)
        a_lo = (a & _MASK16).astype(np.float64)
        a_hi = (a >> _SHIFT16).astype(np.float64) if hi_max else None
        # Recombining the high limb needs it congruent, not canonical: a
        # cheap fold is enough whenever the fold-bounded value, shifted
        # 16 bits and stacked on the low limb plus a folded accumulator,
        # provably stays in uint64.  Both bounds are exact Python-int
        # arithmetic; when the cheap fold cannot be proven safe (large
        # 2**32 mod q), fall back to a full reduction of the high limb.
        c_lo_max = step * lo_max * qm1
        hi_fold_max = red.fold_bound(step * hi_max * qm1) if hi_max else 0
        hi_fold_ok = (
            hi_max and red.fold_max + (hi_fold_max << 16) + c_lo_max <= _U64_MAX
        )
        hi_red_max = hi_fold_max if hi_fold_ok else qm1
        chunk_max = (hi_red_max << 16) + c_lo_max
        fold_ok = red.fold_max + chunk_max <= _U64_MAX
        # Exact bound on the finished accumulator, so the final
        # reduction can run the cheapest chain its magnitude admits.
        if k > step:
            acc_max = (red.fold_max if fold_ok else qm1) + chunk_max
        else:
            acc_max = chunk_max
        width_block = max(1, self.MATMUL_F64_BLOCK_ELEMS // max(m + k, 1))
        for col in range(0, n, width_block):
            w = min(width_block, n - col)
            bf = b[:, col : col + w].astype(np.float64)
            acc: Optional[np.ndarray] = None
            for start in range(0, k, step):
                stop = min(start + step, k)
                c_lo = a_lo[:, start:stop] @ bf[start:stop]
                term = c_lo.astype(np.uint64)
                if a_hi is not None:
                    c_hi = a_hi[:, start:stop] @ bf[start:stop]
                    hi_red = (red.fold if hi_fold_ok else red.reduce)(
                        c_hi.astype(np.uint64)
                    )
                    hi_red <<= _SHIFT16
                    term += hi_red
                if acc is None:
                    acc = term
                else:
                    (red.fold if fold_ok else red.reduce)(acc, out=acc)
                    acc += term
            if acc is None:  # k == 0: empty contraction sums to zero
                out[:, col : col + w] = 0
            else:
                red.reduce_bounded(acc, acc_max, out=out[:, col : col + w])

    def _matmul_block(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
        """One width block of the baseline (``numpy_mod``) matmul kernel."""
        k = a.shape[1]
        out[:] = 0
        if k <= 256:
            # Short contraction axis (the coded-computing common case):
            # accumulate one rank-1 product at a time, keeping the
            # working set at O(m * width_block) instead of materializing
            # the full (m, k, n) product tensor.  Reduction is *lazy*:
            # each raw product of reduced residues is < (q-1)**2, so
            # ``batch`` of them accumulate exactly in uint64 before one
            # shared ``np.mod`` — integer division dominates this kernel,
            # and for the default q = 2**31 - 1 this cuts it 4x.  The
            # outer accumulator then holds one reduced (< q) term per
            # batch, at most 256 of them, far from overflow.
            batch = _U64_MAX // ((self.q - 1) ** 2)
            if batch < 2:
                for kk in range(k):
                    out += np.mod(a[:, kk, None] * b[None, kk, :], self._q64)
            else:
                for start in range(0, k, batch):
                    acc = a[:, start, None] * b[None, start, :]
                    for kk in range(start + 1, min(start + batch, k)):
                        acc += a[:, kk, None] * b[None, kk, :]
                    out += np.mod(acc, self._q64, out=acc)
            np.mod(out, self._q64, out=out)
            return
        # Long contraction axis: chunk it so uint64 accumulation cannot
        # overflow; products are reduced (mod q) before accumulation, so
        # each term < 2**32 and up to 2**32 terms fit.
        step = 4096
        for start in range(0, k, step):
            stop = min(start + step, k)
            prod = np.mod(
                a[:, start:stop, None] * b[None, start:stop, :], self._q64
            )
            np.mod(
                out + np.sum(prod, axis=1, dtype=np.uint64), self._q64, out=out
            )

    def matvec(self, a: ArrayLike, x: ArrayLike) -> np.ndarray:
        """Matrix-vector product over GF(q)."""
        x = self.array(x)
        if x.ndim != 1:
            raise FieldError("matvec requires a 1-D vector")
        return self.matmul(a, x[:, None])[:, 0]

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    def random(self, shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Uniformly random field elements of the given shape."""
        rng = rng if rng is not None else np.random.default_rng()
        return rng.integers(0, self.q, size=shape, dtype=np.uint64)

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        # Reducers are bit-identical by contract, so fields compare (and
        # hash) on the modulus alone.
        return isinstance(other, FiniteField) and other.q == self.q

    def __hash__(self) -> int:
        return hash(("FiniteField", self.q))

    def __repr__(self) -> str:
        return f"FiniteField(q={self.q}, reducer={self.reducer.kind})"
