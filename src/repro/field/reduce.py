"""Division-free modular reduction kernels for GF(q).

Every hot path in the field layer funnels through one of three
:class:`Reducer` strategies, selected at :class:`FiniteField`
construction:

* :class:`MersenneReducer` — for ``q = 2**k - 1`` (the library default
  ``2**31 - 1``): ``x mod q`` by repeated shift-and-add folds
  ``(x & mask) + (x >> k)``, exploiting ``2**k ≡ 1 (mod q)``.  No
  integer division anywhere.
* :class:`BarrettReducer` — for any prime ``q < 2**32``: a classic
  Barrett reduction with ``mu = floor(2**64 / q)`` whose 64x64→high-64
  multiply is emulated with four 32-bit limb products, plus a cheap
  high/low split fold (``x ≡ (x >> 32) * (2**32 mod q) + (x & 0xffffffff)``)
  used to keep lazy accumulators clear of uint64 overflow.  Correct for
  the full uint64 input range, which is what unlocks lazy (batched)
  accumulation for moduli near ``2**32`` where a raw-product batch of
  two already overflows.
* :class:`NumpyModReducer` — the ``np.mod`` integer-division oracle the
  other two are property-tested and benchmarked against; it also
  preserves the pre-reducer kernel byte-for-byte as the A/B baseline.

All three return canonical residues in ``[0, q)``, so results are
bit-identical across reducers by construction; the test suite pins this
(``tests/field/test_reduce.py``).

Selection is ``"auto"`` (Mersenne when the modulus allows, Barrett
otherwise) unless overridden by the constructor argument or the
``REPRO_FIELD_REDUCER`` environment variable (``auto`` / ``mersenne`` /
``barrett`` / ``numpy_mod``) — the env knob exists for A/B
benchmarking a running service without code changes.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import FieldError

#: Environment variable overriding the auto-selected reduction kernel.
REDUCER_ENV = "REPRO_FIELD_REDUCER"

_U64_MAX = (1 << 64) - 1
_WORD = 1 << 32
_MASK32 = np.uint64(_WORD - 1)
_SHIFT32 = np.uint64(32)


class Reducer:
    """Strategy interface: reduce uint64 arrays to residues in ``[0, q)``.

    Public entry points (:meth:`reduce`, :meth:`fold`,
    :meth:`reduce_semi`) accept anything coercible to uint64 — including
    numpy scalars and 0-d arrays, for which they return numpy scalars,
    matching ``np.mod`` semantics — and dispatch to the subclass
    ``_reduce`` / ``_fold`` / ``_reduce_semi`` kernels, which may assume
    an ndarray of ndim >= 1.

    * ``reduce`` — full reduction, valid for the entire uint64 range.
    * ``fold`` — *partial* reduction: returns a value congruent to the
      input bounded by :attr:`fold_max`; used to keep lazy accumulators
      from overflowing without paying for a full reduction.
    * ``reduce_semi`` — inputs known to be below ``2q`` (e.g. the sum of
      two residues); a single conditional subtract for the
      division-free kernels.
    """

    kind: str = "abstract"
    #: True when the kernel contains no integer division; gates the
    #: limb-split matmul fast path in :class:`FiniteField`.
    division_free: bool = True

    def __init__(self, q: int):
        self.q = int(q)
        if not 2 <= self.q < _WORD:
            raise FieldError(f"reducer modulus must be in [2, 2**32), got {q}")
        self._q64 = np.uint64(self.q)
        #: Inclusive upper bound on what :meth:`fold` can return.
        self.fold_max: int = self.q - 1

    # -- public entry points (scalar-safe) ------------------------------
    def reduce(self, x, out: Optional[np.ndarray] = None):
        """``x mod q`` for any uint64 input; new array unless ``out`` given."""
        return self._dispatch(self._reduce, x, out)

    def fold(self, x, out: Optional[np.ndarray] = None):
        """A value congruent to ``x`` mod q, bounded by :attr:`fold_max`."""
        return self._dispatch(self._fold, x, out)

    def reduce_semi(self, x, out: Optional[np.ndarray] = None):
        """``x mod q`` for inputs below ``2q``."""
        return self._dispatch(self._reduce_semi, x, out)

    def reduce_bounded(self, x, x_max: int, out: Optional[np.ndarray] = None):
        """``x mod q`` for inputs bounded by ``x_max``.

        Picks the cheapest chain the bound admits: when a few folds
        provably land below ``2q`` (checked with exact Python-int
        arithmetic via :meth:`fold_bound`), runs them plus one
        conditional subtract — far fewer array passes than the
        full-range kernel; otherwise falls back to :meth:`reduce`.
        """
        q2 = 2 * self.q
        bound = int(x_max)
        folds = 0
        while bound >= q2 and folds < 3:
            next_bound = self.fold_bound(bound)
            if next_bound >= bound:
                break
            bound = next_bound
            folds += 1
        if bound >= q2:
            return self.reduce(x, out=out)
        for _ in range(folds):
            x = self.fold(x, out=out)
            if out is None and isinstance(x, np.ndarray):
                out = x  # keep the remaining passes in place
        return self.reduce_semi(x, out=out)

    #: Elementwise kernels run over flat blocks of this many elements.
    #: The multi-pass kernels allocate several temporaries per call; for
    #: huge arrays each temporary is an mmap'd allocation whose
    #: page-fault cost dwarfs the arithmetic (measured 30x on a
    #: 48M-element Barrett reduce), while block-sized temporaries come
    #: from the allocator's free lists and stay cache-resident between
    #: passes.
    BLOCK_ELEMS = 1 << 20

    def _dispatch(self, impl, x, out: Optional[np.ndarray]):
        x = np.asarray(x, dtype=np.uint64)
        if not x.ndim:
            scalar = impl(x.reshape(1), None)[0]
            if out is not None:
                out[...] = scalar
                return out
            return scalar
        if x.size > self.BLOCK_ELEMS:
            xc = x if x.flags.c_contiguous else np.ascontiguousarray(x)
            if out is None:
                out = np.empty_like(xc)
            if out.flags.c_contiguous:
                xf = xc.reshape(-1)
                of = out.reshape(-1)
                for i in range(0, xf.size, self.BLOCK_ELEMS):
                    impl(xf[i : i + self.BLOCK_ELEMS],
                         of[i : i + self.BLOCK_ELEMS])
                return out
            # Non-contiguous destination: single-shot kernel call.
        return impl(x, out)

    # -- kernels (ndim >= 1 ndarrays) -----------------------------------
    def _reduce(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def _fold(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        # Default: a full reduction is a (maximally tight) fold.
        return self._reduce(x, out)

    def _reduce_semi(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        if out is None:
            out = x.copy()
        elif out is not x:
            np.copyto(out, x)
        np.subtract(out, self._q64, out=out, where=out >= self._q64)
        return out

    # -- lazy-accumulation geometry -------------------------------------
    def fold_bound(self, x_max: int) -> int:
        """Upper bound on ``fold(x)`` given ``x <= x_max``.

        Exact Python-int arithmetic, used by callers (the limb-split
        matmul) to prove a fold-then-accumulate sequence cannot wrap
        uint64 before choosing the cheap fold over a full reduction.
        """
        return min(x_max, self.q - 1)

    def lazy_terms(self, after_fold: bool = False) -> int:
        """How many raw products of residues fit in uint64 headroom.

        Each raw product of two reduced residues is at most ``(q-1)**2``.
        ``after_fold=True`` accounts for an accumulator already holding a
        folded value (at most :attr:`fold_max`).
        """
        product_max = (self.q - 1) ** 2
        if product_max == 0:
            return _U64_MAX
        headroom = _U64_MAX - (self.fold_max if after_fold else 0)
        return headroom // product_max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(q={self.q})"


class NumpyModReducer(Reducer):
    """``np.mod`` integer-division oracle and pre-reducer A/B baseline."""

    kind = "numpy_mod"
    division_free = False

    def _reduce(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        if out is None:
            return np.mod(x, self._q64)
        np.mod(x, self._q64, out=out)
        return out

    # The oracle reduces exactly the way the pre-reducer field layer
    # did: one integer division everywhere, so A/B timings are honest.
    def _reduce_semi(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        return self._reduce(x, out)


def mersenne_exponent(q: int) -> Optional[int]:
    """``k`` when ``q == 2**k - 1`` (k >= 2), else None."""
    k = int(q).bit_length()
    return k if k >= 2 and q == (1 << k) - 1 else None


class MersenneReducer(Reducer):
    """Shift-and-add reduction for Mersenne moduli ``q = 2**k - 1``.

    ``2**k ≡ 1 (mod q)`` makes ``x ≡ (x & mask) + (x >> k)`` a
    contraction: each fold shortens ``x`` by ``k`` bits.  The number of
    folds needed to bring a full-range uint64 below ``2q`` is computed
    once at construction (2 folds for the default ``k = 31``), after
    which a single conditional subtract lands in ``[0, q)``.
    """

    kind = "mersenne"

    def __init__(self, q: int):
        k = mersenne_exponent(q)
        if k is None:
            raise FieldError(
                f"MersenneReducer requires q = 2**k - 1, got {q}; "
                f"use the barrett reducer for general moduli"
            )
        super().__init__(q)
        self._k = k
        self._k64 = np.uint64(k)
        self._mask = np.uint64(q)
        # Static fold count: bound tracks the max value after each fold
        # ((x >> k) <= bound >> k, (x & mask) <= q); stop once a single
        # conditional subtract suffices.
        bound = _U64_MAX
        passes = 0
        while bound > 2 * self.q - 1:
            new_bound = (bound >> k) + self.q
            if new_bound >= bound:  # pragma: no cover - k >= 2 contracts
                break
            bound = new_bound
            passes += 1
        self._passes = max(1, passes)
        self.fold_max = (_U64_MAX >> k) + self.q

    def _reduce(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        hi = np.right_shift(x, self._k64)
        if out is None:
            acc = np.bitwise_and(x, self._mask)
        else:
            np.bitwise_and(x, self._mask, out=out)
            acc = out
        acc += hi
        for _ in range(self._passes - 1):
            np.right_shift(acc, self._k64, out=hi)
            acc &= self._mask
            acc += hi
        np.subtract(acc, self._q64, out=acc, where=acc >= self._q64)
        return acc

    def _fold(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        hi = np.right_shift(x, self._k64)
        if out is None:
            acc = np.bitwise_and(x, self._mask)
        else:
            np.bitwise_and(x, self._mask, out=out)
            acc = out
        acc += hi
        return acc

    def fold_bound(self, x_max: int) -> int:
        # fold(x) = (x & mask) + (x >> k) <= min(x_max, q) + (x_max >> k).
        return min(self.fold_max, min(x_max, self.q) + (x_max >> self._k))


class BarrettReducer(Reducer):
    """Barrett reduction for arbitrary moduli ``q < 2**32``.

    ``mu = floor(2**64 / q)`` is precomputed; for any uint64 ``x`` the
    quotient estimate ``est = floor(x * mu / 2**64)`` satisfies
    ``est ∈ {Q-1, Q}`` where ``Q = floor(x / q)`` (standard Barrett
    bound with ``x < 2**64``), so ``x - est*q`` lands in ``[0, 2q)``
    and one conditional subtract finishes.  The high half of the 64x64
    product is emulated with four 32-bit limb multiplies — shifts,
    masks, multiplies, adds only; no division.

    :meth:`fold` uses the split identity
    ``x ≡ (x >> 32) * (2**32 mod q) + (x & 0xffffffff)`` whose output is
    bounded by ``(2**32 - 1) * (2**32 mod q) + 2**32 - 1``; for every
    ``q < 2**32`` that bound leaves room for at least one more raw
    product of residues in uint64 (``fold_max + (q-1)**2 < 2**64``),
    which is what makes lazy accumulation work even for moduli near
    ``2**32``.
    """

    kind = "barrett"

    def __init__(self, q: int):
        super().__init__(q)
        mu = (1 << 64) // self.q
        self._mu_hi = np.uint64(mu >> 32)
        self._mu_lo = np.uint64(mu & (_WORD - 1))
        c = _WORD % self.q
        self._c = c
        self._c64 = np.uint64(c)
        self.fold_max = (_WORD - 1) * c + (_WORD - 1)
        # fold_max + (q-1)**2 = 2**64 - q*(2**32 - q + 1) - ... < 2**64
        # for all q in [2, 2**32); pin the algebra at construction time.
        assert self.fold_max + (self.q - 1) ** 2 <= _U64_MAX

    def _reduce(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        x0 = np.bitwise_and(x, _MASK32)
        x1 = np.right_shift(x, _SHIFT32)
        # est = high 64 bits of x * mu via 32-bit limbs; every
        # intermediate stays below 2**64: the cross products are at most
        # (2**32 - 1)**2 and each carry term adds less than 2**32.
        t = x0 * self._mu_lo
        np.right_shift(t, _SHIFT32, out=t)
        mid1 = x1 * self._mu_lo
        mid1 += t
        np.bitwise_and(mid1, _MASK32, out=t)
        mid2 = x0 * self._mu_hi
        mid2 += t
        est = x1 * self._mu_hi
        np.right_shift(mid1, _SHIFT32, out=mid1)
        est += mid1
        np.right_shift(mid2, _SHIFT32, out=mid2)
        est += mid2
        # r = x - est*q lands in [0, 2q); est*q <= x so no wraparound.
        est *= self._q64
        if out is None:
            acc = np.subtract(x, est)
        else:
            np.subtract(x, est, out=out)
            acc = out
        np.subtract(acc, self._q64, out=acc, where=acc >= self._q64)
        return acc

    def _fold(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        hi = np.right_shift(x, _SHIFT32)
        hi *= self._c64
        if out is None:
            acc = np.bitwise_and(x, _MASK32)
        else:
            np.bitwise_and(x, _MASK32, out=out)
            acc = out
        acc += hi
        return acc

    def fold_bound(self, x_max: int) -> int:
        # fold(x) = (x >> 32) * c + (x & 0xffffffff)
        #        <= (x_max >> 32) * c + min(x_max, 2**32 - 1).
        return min(
            self.fold_max,
            (x_max >> 32) * self._c + min(x_max, _WORD - 1),
        )


_REDUCERS = {
    NumpyModReducer.kind: NumpyModReducer,
    MersenneReducer.kind: MersenneReducer,
    BarrettReducer.kind: BarrettReducer,
}


def available_reducer_kinds(q: int) -> Tuple[str, ...]:
    """Reducer kinds valid for modulus ``q`` (always includes the oracle)."""
    kinds = []
    if mersenne_exponent(q) is not None:
        kinds.append(MersenneReducer.kind)
    kinds.append(BarrettReducer.kind)
    kinds.append(NumpyModReducer.kind)
    return tuple(kinds)


def select_reducer(q: int, kind: Optional[str] = None) -> Reducer:
    """Build the reduction kernel for ``q``.

    ``kind`` is one of ``auto`` / ``mersenne`` / ``barrett`` /
    ``numpy_mod``; when None, the :data:`REDUCER_ENV` environment
    variable is consulted, then ``auto``.  ``auto`` picks Mersenne when
    the modulus has the right shape and Barrett otherwise.  Requesting
    ``mersenne`` for a non-Mersenne modulus raises :class:`FieldError`.
    """
    if kind is None:
        kind = os.environ.get(REDUCER_ENV, "").strip().lower() or "auto"
    kind = kind.strip().lower()
    if kind == "auto":
        kind = (
            MersenneReducer.kind
            if mersenne_exponent(q) is not None
            else BarrettReducer.kind
        )
    try:
        cls = _REDUCERS[kind]
    except KeyError:
        raise FieldError(
            f"unknown reducer {kind!r}; use one of "
            f"{('auto',) + tuple(_REDUCERS)}"
        ) from None
    return cls(q)
