"""Prime utilities for finite-field moduli.

The library performs all modular products in ``numpy.uint64``.  For the
product of two reduced residues ``a, b < q`` to be exact we need
``(q - 1)**2 < 2**64``, i.e. ``q <= 2**32``.  Both moduli used by the paper
and by this reproduction satisfy the bound:

* :data:`DEFAULT_PRIME` — ``2**31 - 1`` (Mersenne), the library default; its
  smaller size keeps intermediate sums further from overflow and is the
  fastest choice for numpy reductions.
* :data:`PAPER_PRIME` — ``2**32 - 5``, the largest prime below ``2**32`` and
  the modulus used in the paper's asynchronous experiments (Appendix F.5).
"""

from __future__ import annotations

from repro.exceptions import FieldError

#: Mersenne prime 2^31 - 1; the library default modulus.
DEFAULT_PRIME: int = (1 << 31) - 1

#: The paper's modulus: largest prime below 2^32 (Appendix F.5).
PAPER_PRIME: int = (1 << 32) - 5

#: Largest modulus for which uint64 products of reduced residues are exact.
MAX_UINT64_SAFE_MODULUS: int = 1 << 32

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test, exact for all 64-bit ints.

    Uses the standard witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}
    which is known to be deterministic below 3.3 * 10^24.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _SMALL_PRIMES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = max(n + 1, 2)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def previous_prime(n: int) -> int:
    """Largest prime strictly smaller than ``n``; raises below 3."""
    candidate = n - 1
    while candidate >= 2:
        if is_prime(candidate):
            return candidate
        candidate -= 1
    raise FieldError(f"no prime below {n}")


def validate_modulus(q: int) -> int:
    """Check that ``q`` is a prime usable with uint64 arithmetic.

    Returns ``q`` unchanged so the call can be inlined in constructors.
    """
    if not isinstance(q, int):
        raise FieldError(f"modulus must be an int, got {type(q).__name__}")
    if q >= MAX_UINT64_SAFE_MODULUS:
        raise FieldError(
            f"modulus {q} too large: products would overflow uint64 "
            f"(require q < 2**32)"
        )
    if not is_prime(q):
        raise FieldError(f"modulus {q} is not prime")
    return q
