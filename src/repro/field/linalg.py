"""Dense linear algebra over GF(q): solve, inverse, rank, determinant.

All routines use Gauss-Jordan elimination with partial (first-nonzero)
pivoting.  Over a field, any nonzero pivot is exact, so no numerical
pivot-size considerations apply; we simply take the first nonzero entry in
the column.  Row operations are vectorized across columns with numpy.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import FieldError, SingularMatrixError
from repro.field.arithmetic import FiniteField


def _eliminate(gf: FiniteField, aug: np.ndarray, ncols: int) -> Tuple[np.ndarray, int, np.ndarray]:
    """Reduce ``aug`` to reduced row-echelon form over GF(q).

    Only the first ``ncols`` columns are treated as pivot candidates; the
    remaining columns ride along (right-hand sides / identity block).

    Returns ``(rref, rank, det)`` where ``det`` is the determinant of the
    leading ``ncols x ncols`` block when the matrix is square and full rank
    (zero otherwise).
    """
    red = gf.reducer
    q64 = np.uint64(gf.q)
    a = aug.copy()
    nrows = a.shape[0]
    det = np.uint64(1)
    pivot_row = 0
    for col in range(ncols):
        if pivot_row >= nrows:
            break
        nonzero = np.nonzero(a[pivot_row:, col])[0]
        if nonzero.size == 0:
            det = np.uint64(0)
            continue
        src = pivot_row + int(nonzero[0])
        if src != pivot_row:
            a[[pivot_row, src]] = a[[src, pivot_row]]
            det = red.reduce_semi(q64 - det)  # row swap flips the sign
        pivot = a[pivot_row, col]
        det = red.reduce(det * pivot)
        inv_pivot = gf.inv(pivot)
        a[pivot_row] = red.reduce(a[pivot_row] * inv_pivot)
        # Zero out the column in all other rows in one vectorized pass.
        factors = a[:, col].copy()
        factors[pivot_row] = np.uint64(0)
        rows_to_fix = np.nonzero(factors)[0]
        if rows_to_fix.size:
            update = red.reduce(factors[rows_to_fix, None] * a[pivot_row][None, :])
            a[rows_to_fix] = red.reduce_semi(a[rows_to_fix] + (q64 - update))
        pivot_row += 1
    rank = pivot_row
    if rank < min(nrows, ncols) or nrows != ncols:
        det = np.uint64(0)
    return a, rank, det


def solve(gf: FiniteField, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``a @ x = b (mod q)`` for square invertible ``a``.

    ``b`` may be a vector or a matrix of stacked right-hand sides.
    Raises :class:`SingularMatrixError` when ``a`` is singular.
    """
    a = gf.array(a)
    b = gf.array(b)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise FieldError(f"solve requires a square matrix, got {a.shape}")
    vector_rhs = b.ndim == 1
    rhs = b[:, None] if vector_rhs else b
    if rhs.shape[0] != a.shape[0]:
        raise FieldError(f"rhs shape {b.shape} incompatible with {a.shape}")
    aug = np.concatenate([a, rhs], axis=1)
    rref, rank, _ = _eliminate(gf, aug, a.shape[1])
    if rank < a.shape[0]:
        raise SingularMatrixError("matrix is singular over GF(q)")
    x = rref[:, a.shape[1]:]
    return x[:, 0] if vector_rhs else x


def inv(gf: FiniteField, a: np.ndarray) -> np.ndarray:
    """Matrix inverse over GF(q) via Gauss-Jordan on ``[A | I]``."""
    a = gf.array(a)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise FieldError(f"inv requires a square matrix, got {a.shape}")
    n = a.shape[0]
    identity = np.eye(n, dtype=np.uint64)
    aug = np.concatenate([a, identity], axis=1)
    rref, rank, _ = _eliminate(gf, aug, n)
    if rank < n:
        raise SingularMatrixError("matrix is singular over GF(q)")
    return rref[:, n:]


def det(gf: FiniteField, a: np.ndarray) -> int:
    """Determinant over GF(q); 0 for singular matrices."""
    a = gf.array(a)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise FieldError(f"det requires a square matrix, got {a.shape}")
    _, _, d = _eliminate(gf, a, a.shape[0])
    return int(d)


def rank(gf: FiniteField, a: np.ndarray) -> int:
    """Rank over GF(q)."""
    a = gf.array(a)
    if a.ndim != 2:
        raise FieldError("rank requires a 2-D matrix")
    _, r, _ = _eliminate(gf, a, a.shape[1])
    return r


def is_invertible(gf: FiniteField, a: np.ndarray) -> bool:
    """True when the square matrix ``a`` is invertible over GF(q)."""
    a = gf.array(a)
    return a.ndim == 2 and a.shape[0] == a.shape[1] and rank(gf, a) == a.shape[0]


def is_mds(gf: FiniteField, w: np.ndarray) -> bool:
    """Exhaustively check the MDS property of a U x N matrix (small sizes).

    A matrix is MDS when every U x U column-submatrix is invertible.  The
    check enumerates all ``C(N, U)`` submatrices, so it is intended for
    test-sized matrices only.
    """
    from itertools import combinations

    w = gf.array(w)
    if w.ndim != 2:
        raise FieldError("is_mds requires a 2-D matrix")
    u, n = w.shape
    if u > n:
        raise FieldError(f"MDS matrix must be wide, got shape {w.shape}")
    return all(
        is_invertible(gf, w[:, list(cols)]) for cols in combinations(range(n), u)
    )
